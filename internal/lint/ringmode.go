package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// RingMode cross-checks declared ring.SyncMode against how the package
// actually touches each ring. A ring declared SingleProducer (or
// SingleProducerConsumer) must only be enqueued from one goroutine
// context; likewise SingleConsumer for dequeue. The analyzer builds a
// package-local call graph, treats every `go` statement callee as a
// distinct goroutine context (plus one "synchronous" context for code
// reachable without a go statement), and flags rings whose single-side
// call sites are reachable from two or more contexts.
//
// The analysis is package-scoped and name-based: rings are identified by
// the variable or struct field their constructor result is bound to.
// Rings handed across package boundaries are out of scope (the consuming
// package is analyzed on its own terms).
type RingMode struct{}

// Name implements Analyzer.
func (*RingMode) Name() string { return "ringmode" }

// Doc implements Analyzer.
func (*RingMode) Doc() string {
	return "flags ring.New/MustNew call sites whose declared SyncMode contradicts multi-goroutine producer/consumer usage"
}

// Check implements Analyzer.
func (r *RingMode) Check(pkg *Package) []Finding {
	ra := &ringAnalysis{an: r, pkg: pkg, byFunc: map[*types.Func]*fnode{}, goLits: map[*ast.FuncLit]bool{}}
	ra.build()
	return ra.report()
}

// fnode is one function (declaration or literal) in the package-local
// call graph.
type fnode struct {
	name    string
	origin  bool // spawned by a go statement
	callees map[*fnode]bool
	callers int
	pos     token.Pos
}

// ringUse is one enqueue/dequeue call site.
type ringUse struct {
	obj      types.Object // the ring's binding (variable or field)
	fn       *fnode
	producer bool
	pos      token.Pos
}

// ringDef is one ring.New/MustNew call with a constant mode and a stable
// binding.
type ringDef struct {
	obj  types.Object
	name string // the ring's name argument when constant, else the binding name
	mode string // const name: SingleProducer, SingleConsumer, ...
	pos  token.Pos
}

type ringAnalysis struct {
	an     *RingMode
	pkg    *Package
	byFunc map[*types.Func]*fnode
	goLits map[*ast.FuncLit]bool
	nodes  []*fnode
	uses   []ringUse
	defs   []ringDef
}

func (ra *ringAnalysis) newNode(name string, pos token.Pos) *fnode {
	n := &fnode{name: name, callees: map[*fnode]bool{}, pos: pos}
	ra.nodes = append(ra.nodes, n)
	return n
}

func (ra *ringAnalysis) build() {
	info := ra.pkg.Info
	// Pass 1: one node per declared function/method.
	for _, file := range ra.pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if f, ok := info.Defs[fd.Name].(*types.Func); ok {
				ra.byFunc[f] = ra.newNode(fd.Name.Name, fd.Pos())
			}
		}
	}
	// Pass 2: edges, go-spawn origins, ring creations and usages.
	for _, file := range ra.pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if f, ok := info.Defs[fd.Name].(*types.Func); ok {
				ra.walk(ra.byFunc[f], fd.Body)
			}
		}
		ra.collectDefs(file)
	}
}

// walk attributes the contents of one function body to its node, creating
// child nodes for function literals.
func (ra *ringAnalysis) walk(cur *fnode, body ast.Node) {
	info := ra.pkg.Info
	skipIdent := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			switch fun := ast.Unparen(n.Call.Fun).(type) {
			case *ast.FuncLit:
				ra.goLits[fun] = true
			case *ast.Ident:
				if f, ok := objOf(info, fun).(*types.Func); ok {
					if t := ra.byFunc[f]; t != nil {
						t.origin = true
						skipIdent[fun] = true
					}
				}
			case *ast.SelectorExpr:
				if f, ok := objOf(info, fun.Sel).(*types.Func); ok {
					if t := ra.byFunc[f]; t != nil {
						t.origin = true
						skipIdent[fun.Sel] = true
					}
				}
			}
		case *ast.FuncLit:
			child := ra.newNode("func literal", n.Pos())
			if ra.goLits[n] {
				child.origin = true
			} else {
				// A literal that is not go-spawned may run on its
				// creator's goroutine (called inline or via a callback).
				cur.callees[child] = true
				child.callers++
			}
			ra.walk(child, n.Body)
			return false
		case *ast.CallExpr:
			ra.recordUse(cur, n)
		case *ast.Ident:
			if skipIdent[n] {
				return true
			}
			if f, ok := info.Uses[n].(*types.Func); ok {
				if t := ra.byFunc[f]; t != nil {
					cur.callees[t] = true
					t.callers++
				}
			}
		}
		return true
	})
}

var (
	producerMethods = []string{"Enqueue", "EnqueueBulk", "EnqueueBurst"}
	consumerMethods = []string{"Dequeue", "DequeueBulk", "DequeueBurst"}
)

// recordUse captures enqueue/dequeue call sites on identifiable rings.
func (ra *ringAnalysis) recordUse(cur *fnode, call *ast.CallExpr) {
	info := ra.pkg.Info
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	f := calleeOf(info, call)
	var producer bool
	switch {
	case methodOn(f, ringPkgPath, "Ring", producerMethods...):
		producer = true
	case methodOn(f, ringPkgPath, "Ring", consumerMethods...):
		producer = false
	default:
		return
	}
	obj := baseObj(info, sel.X)
	if obj == nil {
		return
	}
	ra.uses = append(ra.uses, ringUse{obj: obj, fn: cur, producer: producer, pos: call.Pos()})
}

// collectDefs finds ring constructions bound to a variable or field.
func (ra *ringAnalysis) collectDefs(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				ra.tryDef(n.Lhs[0], n.Rhs[0])
			} else {
				for i := range n.Rhs {
					if i < len(n.Lhs) {
						ra.tryDef(n.Lhs[i], n.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 1 && len(n.Names) > 0 {
				ra.tryDef(n.Names[0], n.Values[0])
			} else {
				for i := range n.Values {
					if i < len(n.Names) {
						ra.tryDef(n.Names[i], n.Values[i])
					}
				}
			}
		case *ast.KeyValueExpr:
			if key, ok := n.Key.(*ast.Ident); ok {
				ra.tryDef(key, n.Value)
			}
		}
		return true
	})
}

// tryDef records a ring definition if rhs is ring.New/MustNew with a
// constant single-sided mode and lhs has a stable identity.
func (ra *ringAnalysis) tryDef(lhs, rhs ast.Expr) {
	info := ra.pkg.Info
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	f := calleeOf(info, call)
	if !funcIn(f, ringPkgPath, "New", "MustNew") || len(call.Args) < 3 {
		return
	}
	modeName, ok := constModeName(f.Pkg(), info, call.Args[2])
	if !ok {
		return
	}
	obj := baseObj(info, lhs)
	if obj == nil {
		return
	}
	name := obj.Name()
	if tv, ok := info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		name = constant.StringVal(tv.Value)
	}
	ra.defs = append(ra.defs, ringDef{obj: obj, name: name, mode: modeName, pos: call.Pos()})
}

// constModeName resolves a constant SyncMode argument to the name of the
// matching ring package constant.
func constModeName(ringPkg *types.Package, info *types.Info, arg ast.Expr) (string, bool) {
	tv, ok := info.Types[arg]
	if !ok || tv.Value == nil {
		return "", false
	}
	val, ok := constant.Int64Val(tv.Value)
	if !ok {
		return "", false
	}
	for _, cname := range []string{"MultiProducerConsumer", "SingleProducer", "SingleConsumer", "SingleProducerConsumer"} {
		if c, ok := ringPkg.Scope().Lookup(cname).(*types.Const); ok {
			if cv, ok := constant.Int64Val(c.Val()); ok && cv == val {
				return cname, true
			}
		}
	}
	return "", false
}

// report computes goroutine contexts and flags contradictions.
func (ra *ringAnalysis) report() []Finding {
	// Reachability from each goroutine origin.
	contexts := map[*fnode]map[*fnode]bool{} // fn -> set of origins reaching it
	for _, n := range ra.nodes {
		if n.origin {
			reach(n, func(m *fnode) {
				if contexts[m] == nil {
					contexts[m] = map[*fnode]bool{}
				}
				contexts[m][n] = true
			})
		}
	}
	// Reachability from synchronous entry points (functions nobody in this
	// package calls, minus go-spawned ones: main, exported API, callbacks).
	syncReach := map[*fnode]bool{}
	for _, n := range ra.nodes {
		if !n.origin && n.callers == 0 {
			reach(n, func(m *fnode) { syncReach[m] = true })
		}
	}

	var out []Finding
	for _, def := range ra.defs {
		for _, side := range []struct {
			single   bool
			producer bool
			verb     string
		}{
			{def.mode == "SingleProducer" || def.mode == "SingleProducerConsumer", true, "enqueued"},
			{def.mode == "SingleConsumer" || def.mode == "SingleProducerConsumer", false, "dequeued"},
		} {
			if !side.single {
				continue
			}
			origins := map[*fnode]bool{}
			sync := false
			for _, u := range ra.uses {
				if u.obj != def.obj || u.producer != side.producer {
					continue
				}
				for o := range contexts[u.fn] {
					origins[o] = true
				}
				if syncReach[u.fn] {
					sync = true
				}
			}
			n := len(origins)
			if sync {
				n++
			}
			if n >= 2 {
				out = append(out, finding(ra.an.Name(), ra.pkg.Position(def.pos),
					"ring %q is declared ring.%s but is %s from %d goroutine contexts; use a multi-%s mode or restructure",
					def.name, def.mode, side.verb, n, map[bool]string{true: "producer", false: "consumer"}[side.producer]))
			}
		}
	}
	return out
}

// reach walks the call graph from n, invoking visit once per node.
func reach(n *fnode, visit func(*fnode)) {
	seen := map[*fnode]bool{}
	var dfs func(*fnode)
	dfs = func(m *fnode) {
		if seen[m] {
			return
		}
		seen[m] = true
		visit(m)
		for c := range m.callees {
			dfs(c)
		}
	}
	dfs(n)
}
