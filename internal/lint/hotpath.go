package lint

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc enforces the `//dhl:hotpath` directive: functions so
// annotated form the per-packet data path (Packer staging, Distributor
// demultiplexing, ring push/pop, mbuf alloc/free) and must not allocate.
// Inside an annotated function the analyzer forbids:
//
//   - calls into fmt or log, and time.Now/time.Since (each allocates
//     and/or syscalls; the data path uses the simulated clock);
//   - map, slice and string-concatenation style composite literals, and
//     make() of maps, slices or channels;
//   - function literals that capture enclosing variables (each capture
//     materializes a closure object per call);
//   - conversions of non-pointer concrete values into interface types
//     (each boxes the value on the heap).
//
// Amortized per-batch work (flush closures, DMA callbacks) belongs in
// unannotated helpers; the directive is deliberately per-function so the
// hot loop can call out to cold code.
type HotPathAlloc struct{}

// Directive is the comment that marks a function as hot-path.
const Directive = "dhl:hotpath"

// Name implements Analyzer.
func (*HotPathAlloc) Name() string { return "hotpathalloc" }

// Doc implements Analyzer.
func (*HotPathAlloc) Doc() string {
	return "forbids allocation (fmt, time.Now, map/slice literals, capturing closures, interface boxing) in //dhl:hotpath functions"
}

// Check implements Analyzer.
func (h *HotPathAlloc) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, Directive) {
				continue
			}
			out = append(out, h.checkBody(pkg, fd)...)
		}
	}
	return out
}

// deniedCall reports whether a resolved callee is on the hot-path
// denylist, with a reason.
func deniedCall(f *types.Func) (string, bool) {
	if f == nil || f.Pkg() == nil {
		return "", false
	}
	switch f.Pkg().Path() {
	case "fmt":
		return "fmt." + f.Name() + " allocates and formats via reflection", true
	case "log":
		return "log." + f.Name() + " allocates and locks", true
	case "time":
		if f.Name() == "Now" || f.Name() == "Since" {
			return "time." + f.Name() + " syscalls; use the simulation clock", true
		}
	}
	return "", false
}

func (h *HotPathAlloc) checkBody(pkg *Package, fd *ast.FuncDecl) []Finding {
	var out []Finding
	info := pkg.Info
	flag := func(n ast.Node, format string, args ...any) {
		out = append(out, finding(h.Name(), pkg.Position(n.Pos()), format, args...))
	}
	fname := fd.Name.Name

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				// Explicit conversion T(x).
				if to := tv.Type; isInterface(to) && len(n.Args) == 1 && boxes(info, n.Args[0], to) {
					flag(n, "%s: conversion to interface %s allocates", fname, types.TypeString(to, nil))
				}
				return true
			}
			if f := calleeOf(info, n); f != nil {
				if reason, bad := deniedCall(f); bad {
					flag(n, "%s: call to %s on the hot path (%s)", fname, f.FullName(), reason)
				}
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := objOf(info, id).(*types.Builtin); ok && b.Name() == "make" && len(n.Args) > 0 {
					if tv, ok := info.Types[n.Args[0]]; ok {
						switch tv.Type.Underlying().(type) {
						case *types.Map, *types.Slice, *types.Chan:
							flag(n, "%s: make(%s) allocates on the hot path", fname, types.TypeString(tv.Type, nil))
						}
					}
				}
			}
			h.checkCallArgs(pkg, fname, n, &out)
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					flag(n, "%s: map literal allocates on the hot path", fname)
				case *types.Slice:
					flag(n, "%s: slice literal allocates on the hot path", fname)
				}
			}
		case *ast.FuncLit:
			if captured := captures(info, n); len(captured) > 0 {
				flag(n, "%s: closure captures %s and allocates per call; hoist it or pass state explicitly",
					fname, joinVars(captured))
			}
		case *ast.AssignStmt:
			h.checkAssign(pkg, fname, n, &out)
		case *ast.ReturnStmt:
			h.checkReturn(pkg, fname, fd, n, &out)
		}
		return true
	})
	return out
}

// checkCallArgs flags arguments implicitly boxed into interface
// parameters.
func (h *HotPathAlloc) checkCallArgs(pkg *Package, fname string, call *ast.CallExpr, out *[]Finding) {
	info := pkg.Info
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1 && call.Ellipsis == 0:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isInterface(pt) && boxes(info, arg, pt) {
			*out = append(*out, finding(h.Name(), pkg.Position(arg.Pos()),
				"%s: argument boxed into interface %s allocates on the hot path", fname, types.TypeString(pt, nil)))
		}
	}
}

// checkAssign flags assignments that box a concrete value into an
// interface-typed destination.
func (h *HotPathAlloc) checkAssign(pkg *Package, fname string, as *ast.AssignStmt, out *[]Finding) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	info := pkg.Info
	for i, lhs := range as.Lhs {
		lt, ok := info.Types[lhs]
		if !ok || !isInterface(lt.Type) {
			continue
		}
		if boxes(info, as.Rhs[i], lt.Type) {
			*out = append(*out, finding(h.Name(), pkg.Position(as.Rhs[i].Pos()),
				"%s: assignment boxes value into interface and allocates on the hot path", fname))
		}
	}
}

// checkReturn flags returns that box a concrete value into an interface
// result.
func (h *HotPathAlloc) checkReturn(pkg *Package, fname string, fd *ast.FuncDecl, ret *ast.ReturnStmt, out *[]Finding) {
	if fd.Type.Results == nil {
		return
	}
	info := pkg.Info
	var resultTypes []types.Type
	for _, field := range fd.Type.Results.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			return
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			resultTypes = append(resultTypes, tv.Type)
		}
	}
	if len(ret.Results) != len(resultTypes) {
		return
	}
	for i, res := range ret.Results {
		if isInterface(resultTypes[i]) && boxes(info, res, resultTypes[i]) {
			*out = append(*out, finding(h.Name(), pkg.Position(res.Pos()),
				"%s: return boxes value into interface and allocates on the hot path", fname))
		}
	}
}

// isInterface reports whether t's underlying type is an interface. Type
// parameters are excluded: their underlying type is a constraint
// interface, but values of type T are concrete at instantiation and a
// T -> T flow never boxes.
func isInterface(t types.Type) bool {
	if _, ok := t.(*types.TypeParam); ok {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// boxes reports whether storing expr into an interface of type to would
// heap-allocate: the static type must be a concrete value kind (basic,
// struct, array, slice, string) — pointers, maps, channels and funcs fit
// in the interface word, and nil/interface sources never box.
func boxes(info *types.Info, expr ast.Expr, to types.Type) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.IsNil() {
		return false
	}
	from := tv.Type
	if from == nil || isInterface(from) {
		return false
	}
	switch from.Underlying().(type) {
	case *types.Basic, *types.Struct, *types.Array, *types.Slice:
		return true
	}
	return false
}

// captures lists the variables a function literal closes over: variables
// used inside the literal but declared outside it in an enclosing
// function scope (package-level state is shared, not captured).
func captures(info *types.Info, lit *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var vars []*types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		if v.Parent() == nil || v.Pkg() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level, not a capture
		}
		seen[v] = true
		vars = append(vars, v)
		return true
	})
	return vars
}

// joinVars renders captured variable names for a message.
func joinVars(vars []*types.Var) string {
	s := ""
	for i, v := range vars {
		if i > 0 {
			s += ", "
		}
		s += v.Name()
	}
	return s
}
