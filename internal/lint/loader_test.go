package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loaderFor builds a fresh Loader rooted at the real module; error-path
// tests get their own instance so poisoned cache entries cannot leak into
// the golden tests' shared loader.
func loaderFor(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

// TestNewLoaderNoGoMod rejects a root without a module declaration.
func TestNewLoaderNoGoMod(t *testing.T) {
	if _, err := NewLoader(t.TempDir()); err == nil {
		t.Fatal("NewLoader on a go.mod-less dir succeeded, want error")
	}
}

// TestNewLoaderBadGoMod rejects a go.mod with no module line.
func TestNewLoaderBadGoMod(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("go 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := NewLoader(dir)
	if err == nil || !strings.Contains(err.Error(), "no module declaration") {
		t.Fatalf("err = %v, want no-module-declaration error", err)
	}
}

// TestLoadDirMissing surfaces a readable error for a package directory
// that does not exist.
func TestLoadDirMissing(t *testing.T) {
	l := loaderFor(t)
	if _, err := l.LoadDir(filepath.Join("testdata", "src", "no_such_pkg")); err == nil {
		t.Fatal("LoadDir on a missing directory succeeded, want error")
	}
}

// TestLoadDirOutsideModule rejects directories outside the module tree
// instead of inventing an import path for them.
func TestLoadDirOutsideModule(t *testing.T) {
	l := loaderFor(t)
	_, err := l.LoadDir(t.TempDir())
	if err == nil || !strings.Contains(err.Error(), "outside module root") {
		t.Fatalf("err = %v, want outside-module-root error", err)
	}
}

// TestLoadDirNoGoFiles surfaces an empty package (directory with no
// buildable Go files) as an error rather than a nil Package.
func TestLoadDirNoGoFiles(t *testing.T) {
	dir := filepath.Join(loaderFor(t).Root, "internal", "lint", "testdata", "empty_pkg")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	l := loaderFor(t)
	_, err := l.LoadDir(dir)
	if err == nil || !strings.Contains(err.Error(), "no buildable Go files") {
		t.Fatalf("err = %v, want no-buildable-Go-files error", err)
	}
}

// TestLoadDirTypeError propagates type-check failures with the package
// identified: analyzers must never see a half-checked package.
func TestLoadDirTypeError(t *testing.T) {
	l := loaderFor(t)
	_, err := l.LoadDir(filepath.Join("testdata", "src", "badtypes"))
	if err == nil || !strings.Contains(err.Error(), "type-checking") ||
		!strings.Contains(err.Error(), "badtypes") {
		t.Fatalf("err = %v, want type-checking error naming badtypes", err)
	}
}

// TestLoadDirBadImport fails cleanly on an import that is neither
// standard library nor module-internal (the vendored-dependency shape the
// offline loader cannot resolve).
func TestLoadDirBadImport(t *testing.T) {
	l := loaderFor(t)
	_, err := l.LoadDir(filepath.Join("testdata", "src", "badimport"))
	if err == nil || !strings.Contains(err.Error(), "example.com/vendored/dep") {
		t.Fatalf("err = %v, want unresolvable-import error naming the path", err)
	}
}

// TestLoadDirMemoized returns the identical *Package for repeated loads
// of one directory, so module-wide analyzers can compare packages by
// pointer.
func TestLoadDirMemoized(t *testing.T) {
	l := loaderFor(t)
	a, err := l.LoadDir(filepath.Join("testdata", "src", "mbufleak_neg"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.LoadDir(filepath.Join("testdata", "src", "mbufleak_neg"))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("LoadDir is not memoized: two loads returned distinct packages")
	}
}

// TestLoadAllSkipsFixtures keeps testdata (deliberately-broken fixtures
// included) out of whole-module analysis.
func TestLoadAllSkipsFixtures(t *testing.T) {
	l := loaderFor(t)
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadAll found no packages")
	}
	for _, pkg := range pkgs {
		if strings.Contains(pkg.ImportPath, "testdata") {
			t.Errorf("LoadAll included fixture package %s", pkg.ImportPath)
		}
	}
}
