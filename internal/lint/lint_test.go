package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// sharedLoader memoizes one Loader across the golden tests so the
// standard library is type-checked from source only once.
var sharedLoader *Loader

func fixture(t *testing.T, name string) *Package {
	t.Helper()
	if sharedLoader == nil {
		l, err := NewLoader(filepath.Join("..", ".."))
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		sharedLoader = l
	}
	pkg, err := sharedLoader.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	return pkg
}

func analyzerByName(t *testing.T, name string) Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name() == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// TestGoldenPositives checks each positive fixture against its analyzer:
// the findings must match the expected substrings one-to-one, in
// position order.
func TestGoldenPositives(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer string
		want     []string // substring of findings[i].Message
	}{
		{
			dir:      "mbufleak_pos",
			analyzer: "mbufleak",
			want: []string{
				`LeakOnEarlyReturn: mbuf "m"`,
				`LeakBulkAtExit: mbuf "dst"`,
				`LeakRetained: mbuf "m"`,
			},
		},
		{
			dir:      "ringmode_pos",
			analyzer: "ringmode",
			want: []string{
				`ring "spsc" is declared ring.SingleProducerConsumer`,
				`ring "sc" is declared ring.SingleConsumer`,
			},
		},
		{
			dir:      "hotpathalloc_pos",
			analyzer: "hotpathalloc",
			want: []string{
				"call to fmt.Sprintf",
				"argument boxed into interface",
				"call to time.Now",
				"map literal allocates",
				"slice literal allocates",
				"make([]byte) allocates",
				"closure captures x",
				"assignment boxes value into interface",
				"return boxes value into interface",
			},
		},
		{
			dir:      "checkederr_pos",
			analyzer: "checkederr",
			want: []string{
				"result of Free",
				"result of AllocBulk",
				"result of FreeBulk",
				"result of Retain",
				"result of Reload",
				"result of ResetRegion",
				"result of Serve",
				"result of Close",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg := fixture(t, tc.dir)
			got := Run([]*Package{pkg}, []Analyzer{analyzerByName(t, tc.analyzer)})
			if len(got) != len(tc.want) {
				for _, f := range got {
					t.Logf("finding: %s", f)
				}
				t.Fatalf("got %d findings, want %d", len(got), len(tc.want))
			}
			for i, f := range got {
				if !strings.Contains(f.Message, tc.want[i]) {
					t.Errorf("finding %d = %q, want substring %q", i, f.Message, tc.want[i])
				}
				if f.Analyzer != tc.analyzer {
					t.Errorf("finding %d attributed to %q, want %q", i, f.Analyzer, tc.analyzer)
				}
				if filepath.Base(f.File) != tc.dir+".go" {
					t.Errorf("finding %d in %q, want file %s.go", i, f.File, tc.dir)
				}
			}
		})
	}
}

// TestGoldenNegatives runs the FULL analyzer suite over each negative
// fixture; correct code must produce zero findings from any analyzer.
func TestGoldenNegatives(t *testing.T) {
	for _, dir := range []string{
		"mbufleak_neg", "ringmode_neg", "hotpathalloc_neg", "checkederr_neg",
	} {
		t.Run(dir, func(t *testing.T) {
			pkg := fixture(t, dir)
			got := Run([]*Package{pkg}, Analyzers())
			for _, f := range got {
				t.Errorf("unexpected finding: %s", f)
			}
		})
	}
}

// TestPositivesTripFullSuite mirrors the CI gate contract: running every
// analyzer over a positive fixture (as cmd/dhl-lint does) must yield at
// least one finding, i.e. a non-zero exit.
func TestPositivesTripFullSuite(t *testing.T) {
	for _, dir := range []string{
		"mbufleak_pos", "ringmode_pos", "hotpathalloc_pos", "checkederr_pos",
	} {
		t.Run(dir, func(t *testing.T) {
			pkg := fixture(t, dir)
			if got := Run([]*Package{pkg}, Analyzers()); len(got) == 0 {
				t.Fatalf("full suite found nothing in %s; dhl-lint would exit 0", dir)
			}
		})
	}
}
