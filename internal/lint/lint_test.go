package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// sharedLoader memoizes one Loader across the golden tests so the
// standard library is type-checked from source only once.
var sharedLoader *Loader

func fixture(t *testing.T, name string) *Package {
	t.Helper()
	if sharedLoader == nil {
		l, err := NewLoader(filepath.Join("..", ".."))
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		sharedLoader = l
	}
	pkg, err := sharedLoader.LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	return pkg
}

func analyzerByName(t *testing.T, name string) Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name() == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// TestGoldenPositives checks each positive fixture against its analyzer:
// the findings must match the expected substrings one-to-one, in
// position order.
func TestGoldenPositives(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer string
		extra    []string // additional fixture dirs loaded into the analyzed set
		want     []string // substring of findings[i].Message
		files    []string // base name of findings[i].File; nil means dir+".go" for all
	}{
		{
			dir:      "mbufleak_pos",
			analyzer: "mbufleak",
			want: []string{
				`LeakOnEarlyReturn: mbuf "m"`,
				`LeakBulkAtExit: mbuf "dst"`,
				`LeakRetained: mbuf "m"`,
			},
		},
		{
			dir:      "ringmode_pos",
			analyzer: "ringmode",
			want: []string{
				`ring "spsc" is declared ring.SingleProducerConsumer`,
				`ring "sc" is declared ring.SingleConsumer`,
			},
		},
		{
			dir:      "hotpathalloc_pos",
			analyzer: "hotpathalloc",
			want: []string{
				"call to fmt.Sprintf",
				"argument boxed into interface",
				"call to time.Now",
				"map literal allocates",
				"slice literal allocates",
				"make([]byte) allocates",
				"closure captures x",
				"assignment boxes value into interface",
				"return boxes value into interface",
			},
		},
		{
			dir:      "checkederr_pos",
			analyzer: "checkederr",
			want: []string{
				"result of Free",
				"result of AllocBulk",
				"result of FreeBulk",
				"result of Retain",
				"result of Reload",
				"result of ResetRegion",
				"result of Serve",
				"result of Close",
				"result of TrySendPackets",
				"result of RegisterPressure",
				"result of SetAccBatchBytes",
				"result of SetBurst",
			},
		},
		{
			dir:      "arenalease_pos",
			analyzer: "arenalease",
			want: []string{
				`LeakAtExit: arena segment "b"`,
				`LeakOnBranch: arena segment "b"`,
			},
		},
		{
			dir:      "stagepair_pos",
			analyzer: "stagepair",
			want: []string{
				`DroppedSpan: span of "ib"`,
				`DroppedOnBranch: span of "ib"`,
			},
		},
		{
			dir:      "atomicfield_pos",
			analyzer: "atomicfield",
			want: []string{
				"field atomicfield_pos.hits is accessed via sync/atomic",
				"field atomicfield_pos.misses is accessed via sync/atomic",
				"field atomicfield_pos.hits is accessed via sync/atomic",
				"field atomicfield_pos.misses is accessed via sync/atomic",
			},
		},
		{
			dir:      "faultattr_pos",
			analyzer: "faultattr",
			extra:    []string{filepath.Join("faultattr_pos", "faultinject")},
			want: []string{
				"Plan.Fire result does not guard a counter increment",
				"Plan.Fire result does not guard a counter increment",
				"fault kind OrphanKind has no attribution site",
			},
			files: []string{
				"faultattr_pos.go",
				"faultattr_pos.go",
				"faultinject.go",
			},
		},
		{
			dir:      "escapecheck_pos",
			analyzer: "escapecheck",
			want: []string{
				"EscapeViaReturn: compiler-proven heap escape inside //dhl:hotpath function: moved to heap: x",
				"EscapeViaGlobal: compiler-proven heap escape inside //dhl:hotpath function: moved to heap: v",
				"EscapeOnBranch: compiler-proven heap escape inside //dhl:hotpath function: moved to heap: a",
				"EscapeOnBranch: compiler-proven heap escape inside //dhl:hotpath function: moved to heap: b",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkgs := []*Package{fixture(t, tc.dir)}
			for _, extra := range tc.extra {
				pkgs = append(pkgs, fixture(t, extra))
			}
			got := Run(pkgs, []Analyzer{analyzerByName(t, tc.analyzer)})
			if len(got) != len(tc.want) {
				for _, f := range got {
					t.Logf("finding: %s", f)
				}
				t.Fatalf("got %d findings, want %d", len(got), len(tc.want))
			}
			for i, f := range got {
				if !strings.Contains(f.Message, tc.want[i]) {
					t.Errorf("finding %d = %q, want substring %q", i, f.Message, tc.want[i])
				}
				if f.Analyzer != tc.analyzer {
					t.Errorf("finding %d attributed to %q, want %q", i, f.Analyzer, tc.analyzer)
				}
				wantFile := tc.dir + ".go"
				if tc.files != nil {
					wantFile = tc.files[i]
				}
				if filepath.Base(f.File) != wantFile {
					t.Errorf("finding %d in %q, want file %s", i, f.File, wantFile)
				}
			}
		})
	}
}

// TestGoldenNegatives runs the FULL analyzer suite over each negative
// fixture; correct code must produce zero findings from any analyzer.
func TestGoldenNegatives(t *testing.T) {
	for _, dir := range []string{
		"mbufleak_neg", "ringmode_neg", "hotpathalloc_neg", "checkederr_neg",
		"arenalease_neg", "stagepair_neg", "atomicfield_neg", "faultattr_neg",
		"escapecheck_neg",
	} {
		t.Run(dir, func(t *testing.T) {
			pkg := fixture(t, dir)
			got := Run([]*Package{pkg}, Analyzers())
			for _, f := range got {
				t.Errorf("unexpected finding: %s", f)
			}
		})
	}
}

// TestAllowDirective proves the negative fixtures' suppression cases are
// real: each analyzer, run raw (no allow filtering), must flag exactly
// the one deliberately-annotated violation that Run() then filters out.
func TestAllowDirective(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer string
		want     string // substring of the one raw finding
	}{
		{"arenalease_neg", "arenalease", `AllowedLeak: arena segment "b"`},
		{"stagepair_neg", "stagepair", `AllowedDrop: span of "ib"`},
		{"atomicfield_neg", "atomicfield", "field atomicfield_neg.hits"},
		{"faultattr_neg", "faultattr", "Plan.Fire result does not guard"},
		{"escapecheck_neg", "escapecheck", "AllowedEscape: compiler-proven heap escape"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg := fixture(t, tc.dir)
			a := analyzerByName(t, tc.analyzer)
			raw := a.Check(pkg)
			if len(raw) != 1 || !strings.Contains(raw[0].Message, tc.want) {
				for _, f := range raw {
					t.Logf("raw finding: %s", f)
				}
				t.Fatalf("raw analyzer found %d finding(s), want exactly 1 matching %q", len(raw), tc.want)
			}
			if got := Run([]*Package{pkg}, []Analyzer{a}); len(got) != 0 {
				t.Fatalf("Run did not suppress the allowed finding: %v", got)
			}
		})
	}
}

// TestPositivesTripFullSuite mirrors the CI gate contract: running every
// analyzer over a positive fixture (as cmd/dhl-lint does) must yield at
// least one finding, i.e. a non-zero exit.
func TestPositivesTripFullSuite(t *testing.T) {
	for _, dir := range []string{
		"mbufleak_pos", "ringmode_pos", "hotpathalloc_pos", "checkederr_pos",
		"arenalease_pos", "stagepair_pos", "atomicfield_pos", "faultattr_pos",
		"escapecheck_pos",
	} {
		t.Run(dir, func(t *testing.T) {
			pkg := fixture(t, dir)
			if got := Run([]*Package{pkg}, Analyzers()); len(got) == 0 {
				t.Fatalf("full suite found nothing in %s; dhl-lint would exit 0", dir)
			}
		})
	}
}
