package lint

import (
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// EscapeCheck is the compiler-backed complement to HotPathAlloc: instead
// of recognising allocation syntax in the AST, it runs the real escape
// analysis (`go build -gcflags=-m`) over every package containing a
// //dhl:hotpath function and flags any "escapes to heap" / "moved to
// heap" diagnostic landing inside such a function's body. That catches
// what AST heuristics cannot — closures capturing by reference, interface
// boxing through generic instantiation, address-taken locals the
// compiler cannot keep on the stack — and, symmetrically, stays quiet
// about syntax that looks like an allocation but is proven stack-bound.
//
// The analyzer shells out to the go tool; when the toolchain cannot run
// the probe (no go binary, a compiler without -gcflags=-m) it records
// Unsupported and returns no findings, so the CLI can degrade the step
// to a warning instead of failing the gate on an exotic toolchain.
type EscapeCheck struct {
	// Unsupported is set when the toolchain cannot run `go build
	// -gcflags=-m`; the analyzer then reports nothing.
	Unsupported bool
	// RunErr records a compiler invocation failure other than an
	// unsupported toolchain (e.g. the target packages do not build).
	RunErr error
}

// Name implements Analyzer.
func (*EscapeCheck) Name() string { return "escapecheck" }

// Doc implements Analyzer.
func (*EscapeCheck) Doc() string {
	return "flags compiler-proven heap escapes (go build -gcflags=-m) inside //dhl:hotpath functions"
}

// Check implements Analyzer; per-package operation delegates to the
// module-wide pass so direct use still works.
func (e *EscapeCheck) Check(pkg *Package) []Finding {
	return e.CheckModule([]*Package{pkg})
}

// hotRange is one //dhl:hotpath function's body extent in a file.
type hotRange struct {
	fn         string
	start, end int
}

// CheckModule implements ModuleAnalyzer.
func (e *EscapeCheck) CheckModule(pkgs []*Package) []Finding {
	e.Unsupported = false
	e.RunErr = nil
	// Collect hotpath body ranges per file and the package dirs to build.
	ranges := make(map[string][]hotRange)
	dirSet := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasDirective(fd.Doc, Directive) {
					continue
				}
				p0 := pkg.Position(fd.Pos())
				p1 := pkg.Position(fd.Body.Rbrace)
				ranges[p0.Filename] = append(ranges[p0.Filename],
					hotRange{fn: fd.Name.Name, start: p0.Line, end: p1.Line})
				dirSet[pkg.Dir] = true
			}
		}
	}
	if len(dirSet) == 0 {
		return nil
	}
	var dirs []string
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	root, err := moduleRootOf(dirs[0])
	if err != nil {
		e.RunErr = err
		return nil
	}
	out, err := runEscapeBuild(root, dirs)
	if err != nil {
		if isUnsupportedToolchain(err, out) {
			e.Unsupported = true
		} else {
			e.RunErr = fmt.Errorf("escapecheck: go build -gcflags=-m: %w\n%s", err, out)
		}
		return nil
	}
	return e.parseEscapes(root, out, ranges)
}

// moduleRootOf walks up from dir to the directory containing go.mod.
func moduleRootOf(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("escapecheck: no go.mod above %s", dir)
		}
		d = parent
	}
}

// runEscapeBuild invokes the compiler with escape-analysis diagnostics on
// the given package directories. The go tool replays cached diagnostics,
// so repeat runs stay cheap.
func runEscapeBuild(root string, dirs []string) (string, error) {
	if _, err := exec.LookPath("go"); err != nil {
		return "", fmt.Errorf("go tool not found: %w", err)
	}
	args := []string{"build", "-gcflags=-m"}
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return "", err
		}
		args = append(args, "./"+filepath.ToSlash(rel))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// isUnsupportedToolchain classifies a failed build as "this toolchain
// cannot run the probe" rather than "the code does not compile".
func isUnsupportedToolchain(err error, out string) bool {
	if _, ok := err.(*exec.Error); ok { // go binary missing or not runnable
		return true
	}
	for _, marker := range []string{
		"flag provided but not defined",
		"unknown flag",
		"unsupported flag",
		"usage: go build",
	} {
		if strings.Contains(out, marker) {
			return true
		}
	}
	return false
}

// parseEscapes extracts the heap-escape diagnostics that land inside a
// hotpath body. Compiler paths are relative to the module root.
func (e *EscapeCheck) parseEscapes(root, out string, ranges map[string][]hotRange) []Finding {
	var findings []Finding
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if !strings.Contains(line, "escapes to heap") && !strings.Contains(line, "moved to heap") {
			continue
		}
		file, ln, col, msg, ok := splitDiagnostic(line)
		if !ok {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		for _, r := range ranges[file] {
			if ln < r.start || ln > r.end {
				continue
			}
			findings = append(findings, Finding{
				Analyzer: e.Name(),
				File:     file,
				Line:     ln,
				Col:      col,
				Message: fmt.Sprintf("%s: compiler-proven heap escape inside //dhl:hotpath function: %s",
					r.fn, msg),
			})
			break
		}
	}
	return findings
}

// splitDiagnostic parses one `file:line:col: message` compiler line.
func splitDiagnostic(line string) (file string, ln, col int, msg string, ok bool) {
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 {
		return "", 0, 0, "", false
	}
	ln, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return "", 0, 0, "", false
	}
	return parts[0], ln, col, strings.TrimSpace(parts[3]), true
}
