// Package lint implements dhl-lint, a domain-specific static-analysis
// suite for this module. The Go compiler cannot see DHL's operational
// invariants — the DPDK mempool contract that every Alloc is balanced by a
// Free, the rte_ring rule that a SingleProducer ring is only ever pushed
// from one goroutine, or the requirement that the Packer/Distributor data
// path stays allocation-free — so these analyzers enforce them at review
// time instead. Everything here is written against the standard library
// only (go/ast, go/parser, go/types); the module stays dependency-free and
// offline-buildable.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// ModulePath is the import-path prefix of this module; analyzers use it to
// recognise DHL's own API amid arbitrary user code.
const ModulePath = "github.com/opencloudnext/dhl-go"

// Finding is one analyzer diagnostic, positioned at file:line:col.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one domain-specific check run over a type-checked package.
type Analyzer interface {
	// Name identifies the analyzer in findings and -run filters.
	Name() string
	// Doc is a one-line description for usage output.
	Doc() string
	// Check inspects one package and returns its findings.
	Check(pkg *Package) []Finding
}

// ModuleAnalyzer is an analyzer whose invariant spans package boundaries
// (atomicfield's "atomic everywhere" rule, faultattr's kind/ledger
// exhaustiveness, escapecheck's whole-build compiler pass). Run invokes
// CheckModule once with every loaded package instead of Check per
// package.
type ModuleAnalyzer interface {
	Analyzer
	// CheckModule inspects the whole package set at once.
	CheckModule(pkgs []*Package) []Finding
}

// Analyzers returns the full suite in stable order.
func Analyzers() []Analyzer {
	return []Analyzer{
		&MbufLeak{},
		&RingMode{},
		&HotPathAlloc{},
		&CheckedErr{},
		&ArenaLease{},
		&AtomicField{},
		&StagePair{},
		&FaultAttr{},
		&EscapeCheck{},
	}
}

// Run applies the given analyzers to the given packages and returns all
// findings sorted by position. Findings covered by a //dhl:allow
// directive (see AllowDirective) are dropped before sorting.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	var all []Finding
	for _, a := range analyzers {
		if ma, ok := a.(ModuleAnalyzer); ok {
			all = append(all, ma.CheckModule(pkgs)...)
			continue
		}
		for _, pkg := range pkgs {
			all = append(all, a.Check(pkg)...)
		}
	}
	all = filterAllowed(all, buildAllowIndex(pkgs))
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		if all[i].Line != all[j].Line {
			return all[i].Line < all[j].Line
		}
		if all[i].Col != all[j].Col {
			return all[i].Col < all[j].Col
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all
}

// finding builds a Finding from a token position.
func finding(name string, pos token.Position, format string, args ...any) Finding {
	return Finding{
		Analyzer: name,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// inModule reports whether an import path belongs to this module (or, for
// analyzer test fixtures, mirrors its layout).
func inModule(path string) bool {
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/")
}
