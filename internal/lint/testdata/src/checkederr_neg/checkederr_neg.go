// Package checkederr_neg handles or explicitly discards DHL API errors;
// the checkederr analyzer must stay quiet.
package checkederr_neg

import (
	"net"

	"github.com/opencloudnext/dhl-go/internal/core"
	"github.com/opencloudnext/dhl-go/internal/fpga"
	"github.com/opencloudnext/dhl-go/internal/mbuf"
	"github.com/opencloudnext/dhl-go/internal/telemetry"
)

// Propagated returns the API error to the caller.
func Propagated(p *mbuf.Pool, m *mbuf.Mbuf) error {
	return p.Free(m)
}

// Inspected branches on the error.
func Inspected(p *mbuf.Pool, dst []*mbuf.Mbuf) bool {
	if err := p.AllocBulk(dst); err != nil {
		return false
	}
	if err := p.FreeBulk(dst); err != nil {
		return false
	}
	return true
}

// Deliberate uses the explicit blank assignment, which documents intent
// and is allowed by policy.
func Deliberate(p *mbuf.Pool, m *mbuf.Mbuf) {
	_ = p.Free(m)
}

// RecoveryHandled propagates the recovery surface's errors.
func RecoveryHandled(d *fpga.Device) error {
	if err := d.Reload(0, nil); err != nil {
		return err
	}
	return d.ResetRegion(0)
}

// ExporterHandled propagates Serve and deliberately discards Close, and
// Close on a type outside the module (net.Listener) stays out of scope.
func ExporterHandled(e *telemetry.Exporter, ln net.Listener) error {
	defer func() { _ = e.Close() }()
	ln.Close()
	return e.Serve(ln)
}

// PressureHandled exercises the adaptive-batching surface correctly:
// the refusal callback registration is checked, TrySendPackets' refused
// tail is freed, and the tuning setters propagate their verdicts.
func PressureHandled(rt *core.Runtime, id core.NFID, p *mbuf.Pool, pkts []*mbuf.Mbuf) error {
	if err := rt.RegisterPressure(id, func(core.PressureInfo) {}); err != nil {
		return err
	}
	acc, _, err := rt.TrySendPackets(id, pkts)
	if err != nil {
		return err
	}
	for _, m := range pkts[acc:] {
		_ = p.Free(m)
	}
	if err := rt.SetAccBatchBytes(0, 1024); err != nil {
		return err
	}
	return rt.SetBurst(0, 32)
}
