// Package arenalease_pos holds deliberate arena-lease lifecycle
// violations the arenalease analyzer must flag.
package arenalease_pos

// batchArena mirrors internal/core's arena: the analyzer matches the
// lease/ret contract by receiver type name.
type batchArena struct {
	segSize int
	free    [][]byte
}

func (a *batchArena) lease() []byte {
	if n := len(a.free); n > 0 {
		seg := a.free[n-1]
		a.free = a.free[:n-1]
		return seg[:0]
	}
	return make([]byte, 0, a.segSize)
}

func (a *batchArena) ret(b []byte) {
	if cap(b) == a.segSize {
		a.free = append(a.free, b[:0])
	}
}

// LeakAtExit leases a segment and falls off the end still owning it.
// (Writing through b is a use of the segment, not a transfer of its
// ownership.)
func LeakAtExit(a *batchArena) {
	b := a.lease()
	b[0] = 2
	// leak: b is never returned or handed off
}

// LeakOnBranch is the multi-path case: the early return inside the branch
// leaks the lease while the fall-through path returns it correctly.
func LeakOnBranch(a *batchArena, drop bool) int {
	b := a.lease()
	if drop {
		return 0 // leak: b is still owned on this path
	}
	a.ret(b)
	return 1
}
