// Package faultattr_pos holds deliberate fault-attribution violations
// the faultattr analyzer must flag: an unattributed Fire call, a guarded
// Fire whose branch books nothing, and (in the faultinject subpackage)
// a Kind with no consumer.
package faultattr_pos

import "github.com/opencloudnext/dhl-go/internal/lint/testdata/src/faultattr_pos/faultinject"

type stats struct {
	drops uint64
}

// FireAndForget draws a fault without attributing it anywhere.
func FireAndForget(p *faultinject.Plan) bool {
	return p.Fire(faultinject.DMAError)
}

// GuardWithoutCounter is the multi-path case: the Fire guards a branch
// with an early return, but neither path increments a counter.
func GuardWithoutCounter(p *faultinject.Plan, s *stats) int {
	if p.Fire(faultinject.ModuleHang) {
		return 0
	}
	s.drops = 0
	return 1
}
