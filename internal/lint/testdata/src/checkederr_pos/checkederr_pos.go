// Package checkederr_pos drops errors from DHL API calls; the checkederr
// analyzer must flag every statement-position drop.
package checkederr_pos

import (
	"net"

	"github.com/opencloudnext/dhl-go/internal/core"
	"github.com/opencloudnext/dhl-go/internal/fpga"
	"github.com/opencloudnext/dhl-go/internal/mbuf"
	"github.com/opencloudnext/dhl-go/internal/telemetry"
)

// DropFree discards Pool.Free's double-free/foreign-mbuf verdict.
func DropFree(p *mbuf.Pool, m *mbuf.Mbuf) {
	p.Free(m) // dropped error
}

// DropBulk discards both the allocation and the release result.
func DropBulk(p *mbuf.Pool, dst []*mbuf.Mbuf) {
	p.AllocBulk(dst) // dropped error
	p.FreeBulk(dst)  // dropped error
}

// DropInGoroutine discards an error on a spawned call.
func DropInGoroutine(p *mbuf.Pool, m *mbuf.Mbuf) {
	go p.Retain(m) // dropped error
}

// DropRecovery discards the recovery surface's rejections: Reload's
// already-reconfiguring/shutdown errors and ResetRegion's not-loaded error.
func DropRecovery(d *fpga.Device) {
	d.Reload(0, nil) // dropped error
	d.ResetRegion(0) // dropped error
}

// DropExporter discards the exporter lifecycle errors: a Serve failure on
// a goroutine is a metrics endpoint that silently never came up, and a
// dropped Close loses the shutdown verdict.
func DropExporter(e *telemetry.Exporter, ln net.Listener) {
	go e.Serve(ln) // dropped error
	e.Close()      // dropped error
}

// DropPressure discards the adaptive-batching surface's verdicts: a
// dropped TrySendPackets result leaks the refused tail of the burst, and
// dropped tuning setters leave the operator believing an override took
// effect when the runtime rejected it.
func DropPressure(rt *core.Runtime, id core.NFID, pkts []*mbuf.Mbuf) {
	rt.TrySendPackets(id, pkts)  // dropped error (and accepted count)
	rt.RegisterPressure(id, nil) // dropped error
	rt.SetAccBatchBytes(0, 1024) // dropped error
	rt.SetBurst(0, 32)           // dropped error
}
