// Package ringmode_neg declares rings whose SyncMode matches their
// goroutine usage; the ringmode analyzer must stay quiet.
package ringmode_neg

import "github.com/opencloudnext/dhl-go/internal/ring"

// spsc has exactly one producer goroutine and one consumer context.
var spsc = ring.MustNew[int]("spsc-ok", 64, ring.SingleProducerConsumer)

func producer() {
	for i := 0; i < 8; i++ {
		spsc.Enqueue(i)
	}
}

// RunPaired spawns the single producer and consumes inline.
func RunPaired() int {
	go producer()
	n := 0
	for {
		if _, ok := spsc.Dequeue(); !ok {
			return n
		}
		n++
	}
}

// mpmc is declared for the general mode, so any number of goroutines on
// either side is fine.
var mpmc = ring.MustNew[int]("mpmc-ok", 64, ring.MultiProducerConsumer)

func worker() {
	mpmc.Enqueue(1)
	mpmc.Dequeue()
}

// RunCrowd spawns several workers onto the MP/MC ring.
func RunCrowd() {
	go worker()
	go worker()
	go worker()
}
