// Package atomicfield_pos holds deliberate mixed atomic/plain field
// accesses the atomicfield analyzer must flag.
package atomicfield_pos

import "sync/atomic"

type counters struct {
	hits   uint64
	misses uint64
}

// bump accesses both fields through sync/atomic, committing them to the
// atomic discipline module-wide.
func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.misses, 1)
}

// PlainRead reads an atomically-written field without sync/atomic.
func PlainRead(c *counters) uint64 {
	return c.hits // race: written with atomic.AddUint64 in bump
}

// MixedPaths is the multi-path case: both the branch and the early
// return touch atomic fields plainly.
func MixedPaths(c *counters, fast bool) uint64 {
	if fast {
		c.misses = 0 // race: plain write of an atomic field
		return 0
	}
	return c.hits + c.misses // race: two plain reads
}
