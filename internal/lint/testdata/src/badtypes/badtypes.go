// Package badtypes is a loader fixture: syntactically valid Go that does
// not type-check, so LoadDir must surface the type error rather than
// hand analyzers a half-checked package.
package badtypes

// Mismatch assigns a string to an int.
var Mismatch int = "not an int"
