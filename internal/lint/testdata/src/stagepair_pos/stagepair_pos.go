// Package stagepair_pos holds deliberate stage-clock pairing violations
// the stagepair analyzer must flag.
package stagepair_pos

// Span mirrors internal/telemetry's batch trace record; the analyzer
// matches the Start-stamp contract by type name.
type Span struct {
	Start    int64
	StageEnd [3]int64
}

type inflight struct {
	span Span
}

func (ib *inflight) telFinalize() {
	ib.span.StageEnd[2] = ib.span.Start
}

// DroppedSpan starts the stage clock and falls off the end without
// telFinalize or handing the span's owner off.
func DroppedSpan(now int64) {
	ib := &inflight{}
	sp := &ib.span
	sp.Start = now
	// lost: nothing ever finalizes ib's span
}

// DroppedOnBranch is the multi-path case: the early return loses the
// started clock while the fall-through path finalizes it.
func DroppedOnBranch(now int64, fail bool) int {
	ib := &inflight{}
	ib.span.Start = now
	if fail {
		return 0 // lost: ib's span is never finalized on this path
	}
	ib.telFinalize()
	return 1
}
