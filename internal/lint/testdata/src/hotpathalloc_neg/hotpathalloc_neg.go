// Package hotpathalloc_neg shows allocation-free annotated code and
// allocation-heavy unannotated code; neither may be flagged.
package hotpathalloc_neg

import "fmt"

// Sum is annotated and clean: arithmetic, indexing and struct values
// only.
//
//dhl:hotpath
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

type stats struct{ n, max int }

// Observe is annotated and clean: struct literals of concrete type and
// pointer flow do not allocate per packet.
//
//dhl:hotpath
func Observe(s *stats, x int) {
	if x > s.max {
		*s = stats{n: s.n + 1, max: x}
		return
	}
	s.n++
}

// Report is NOT annotated, so cold-path formatting is fine.
func Report(s *stats) string {
	return fmt.Sprintf("n=%d max=%d", s.n, s.max)
}
