// Package arenalease_neg holds correct arena-lease lifecycle code the
// arenalease analyzer must accept.
package arenalease_neg

type batchArena struct {
	segSize int
	free    [][]byte
}

func (a *batchArena) lease() []byte {
	if n := len(a.free); n > 0 {
		seg := a.free[n-1]
		a.free = a.free[:n-1]
		return seg[:0]
	}
	return make([]byte, 0, a.segSize)
}

func (a *batchArena) ret(b []byte) {
	if cap(b) == a.segSize {
		a.free = append(a.free, b[:0])
	}
}

type inflight struct {
	buf []byte
}

// ReturnedOnEveryPath returns the segment on both the failure and the
// success path.
func ReturnedOnEveryPath(a *batchArena, fail bool) int {
	b := a.lease()
	if fail {
		a.ret(b)
		return 0
	}
	a.ret(b)
	return 1
}

// HandedOff moves the lease into an inflight object whose owner returns
// it later; storing the segment discharges the obligation.
func HandedOff(a *batchArena, ib *inflight) {
	b := a.lease()
	ib.buf = b
}

// ReturnedToCaller transfers the lease by returning the segment.
func ReturnedToCaller(a *batchArena) []byte {
	b := a.lease()
	return b
}

// FieldLease assigns the lease directly into a field: the object, not
// this function, owns it from the start.
func FieldLease(a *batchArena, ib *inflight) {
	ib.buf = a.lease()
}

// AllowedLeak is the suppression case: the lease is deliberately parked
// for the process lifetime and the directive documents why.
func AllowedLeak(a *batchArena) {
	b := a.lease() //dhl:allow arenalease pinned warm-up segment, reclaimed at shutdown
	b[0] = 1
}
