// Package hotpathalloc_pos annotates a function that commits every class
// of hot-path allocation the hotpathalloc analyzer forbids.
package hotpathalloc_pos

import (
	"fmt"
	"time"
)

// Describe is annotated hot-path yet formats, reads the wall clock,
// builds map/slice literals, makes a map, captures a closure, and boxes
// into an interface.
//
//dhl:hotpath
func Describe(x int) string {
	s := fmt.Sprintf("x=%d", x) // denied call + boxed argument
	_ = time.Now()              // denied call
	counts := map[int]int{}     // map literal
	ids := []int{x}             // slice literal
	scratch := make([]byte, 16) // make of a slice
	inc := func() { x++ }       // capturing closure
	inc()
	var v interface{}
	v = x // boxing assignment
	_ = v
	_ = counts
	_ = ids
	_ = scratch
	return s
}

// Box is annotated hot-path and boxes its result into an interface.
//
//dhl:hotpath
func Box(x int) interface{} {
	return x // boxing return
}
