// Package escapecheck_neg holds hot-path code the escapecheck analyzer
// must accept: address-taking the compiler proves stack-bound, and one
// documented suppression.
package escapecheck_neg

// Sink observes computed values without keeping addresses.
var Sink int

// StackAddress takes a local's address but the pointer never outlives
// the frame, so escape analysis keeps x on the stack.
//
//dhl:hotpath
func StackAddress() int {
	x := 5
	p := &x
	*p++
	return *p
}

// StackStruct threads a struct pointer through a helper call the
// compiler inlines and proves non-escaping.
//
//dhl:hotpath
func StackStruct(n int) int {
	type pair struct{ a, b int }
	pr := pair{a: n, b: 2 * n}
	q := &pr
	return q.a + q.b
}

// AllowedEscape is the suppression case: the escape is real, but the
// function only runs on the arm-once configuration path and the
// directive documents that.
//
//dhl:hotpath
func AllowedEscape() *int {
	x := 99 //dhl:allow escapecheck arm-once config path, measured off the steady state
	return &x
}
