// Package atomicfield_neg holds consistent field-access disciplines the
// atomicfield analyzer must accept.
package atomicfield_neg

import "sync/atomic"

type counters struct {
	hits  uint64
	seq   uint64
	plain uint64
}

// AllAtomic keeps every access to hits and seq inside sync/atomic.
func AllAtomic(c *counters) uint64 {
	atomic.AddUint64(&c.hits, 1)
	atomic.StoreUint64(&c.seq, atomic.LoadUint64(&c.hits))
	return atomic.LoadUint64(&c.seq)
}

// PlainOnly never touches sync/atomic for this field, so a plain access
// discipline is consistent.
func PlainOnly(c *counters) uint64 {
	c.plain++
	return c.plain
}

// Construct initializes by keyed composite literal: a struct under
// construction is not yet shared, so initialization is exempt.
func Construct() *counters {
	return &counters{hits: 0, seq: 0}
}

// TypedAtomics use the atomic.Uint64 API, which makes mixed access
// unrepresentable and is out of the analyzer's scope.
type typedCounters struct {
	n atomic.Uint64
}

// IncTyped bumps the typed counter.
func IncTyped(t *typedCounters) uint64 {
	t.n.Add(1)
	return t.n.Load()
}

// AllowedSnapshot is the suppression case: a single-threaded snapshot
// path reads the field plainly, documented by the directive.
func AllowedSnapshot(c *counters) uint64 {
	return c.hits //dhl:allow atomicfield read under stop-the-world snapshot lock
}
