// Package badimport is a loader fixture: it imports a path that is
// neither standard library nor inside this module (the shape a vendored
// third-party dependency would have), which the offline loader must
// reject with a resolvable error.
package badimport

import "example.com/vendored/dep"

// Use keeps the import referenced.
var Use = dep.Value
