// Package escapecheck_pos holds hot-path functions whose heap escapes
// are invisible to AST heuristics (no denied calls, no literals, no
// boxing) but proven by the compiler's escape analysis.
package escapecheck_pos

// Sink keeps the compiler from optimizing the escapes away.
var Sink *int

// EscapeViaReturn returns the address of a local: the compiler moves x
// to the heap.
//
//dhl:hotpath
func EscapeViaReturn() *int {
	x := 42
	return &x
}

// EscapeViaGlobal parks a parameter's address in a global: v moves to
// the heap.
//
//dhl:hotpath
func EscapeViaGlobal(v int) {
	Sink = &v
}

// EscapeOnBranch is the multi-path case: both the branch's early return
// and the fall-through return leak an address.
//
//dhl:hotpath
func EscapeOnBranch(c bool) *int {
	a := 1
	if c {
		return &a
	}
	b := 2
	return &b
}
