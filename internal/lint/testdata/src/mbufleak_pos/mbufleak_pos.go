// Package mbufleak_pos holds deliberate mbuf-lifecycle violations the
// mbufleak analyzer must flag.
package mbufleak_pos

import "github.com/opencloudnext/dhl-go/internal/mbuf"

// LeakOnEarlyReturn allocates and then returns on a non-error path
// without freeing or handing the mbuf off.
func LeakOnEarlyReturn(p *mbuf.Pool) error {
	m, err := p.Alloc()
	if err != nil {
		return err
	}
	if m.Len() == 0 {
		return nil // leak: m is still owned here
	}
	return p.Free(m)
}

// LeakBulkAtExit allocates a batch and falls off the end still owning it.
func LeakBulkAtExit(p *mbuf.Pool, dst []*mbuf.Mbuf) {
	if err := p.AllocBulk(dst); err != nil {
		return
	}
	// leak: dst's mbufs are never freed or handed off
}

// LeakRetained takes an extra reference and drops it on the floor.
func LeakRetained(p *mbuf.Pool, m *mbuf.Mbuf) error {
	if err := p.Retain(m); err != nil {
		return err
	}
	return nil // leak: the retained reference is never released
}
