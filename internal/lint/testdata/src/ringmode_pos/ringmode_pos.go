// Package ringmode_pos declares rings whose SyncMode contradicts how
// they are used across goroutines; the ringmode analyzer must flag both.
package ringmode_pos

import "github.com/opencloudnext/dhl-go/internal/ring"

// spsc is declared single-producer/single-consumer but fed from two
// concurrently spawned producers below.
var spsc = ring.MustNew[int]("spsc", 64, ring.SingleProducerConsumer)

func producerA() { spsc.Enqueue(1) }

func producerB() { spsc.Enqueue(2) }

// RunMisdeclaredProducers spawns two producer goroutines onto the SPSC
// ring: an enqueue-side data race under the declared mode.
func RunMisdeclaredProducers() int {
	go producerA()
	go producerB()
	n := 0
	for {
		if _, ok := spsc.Dequeue(); !ok {
			return n
		}
		n++
	}
}

// sc is declared single-consumer but drained from two goroutines.
var sc = ring.MustNew[string]("sc", 64, ring.SingleConsumer)

func consumerA() { sc.Dequeue() }

func consumerB() { sc.Dequeue() }

// RunMisdeclaredConsumers spawns two consumer goroutines onto the MP/SC
// ring: a dequeue-side data race under the declared mode.
func RunMisdeclaredConsumers() {
	sc.Enqueue("x")
	go consumerA()
	go consumerB()
}
