// Package mbufleak_neg holds correct mbuf-lifecycle code the mbufleak
// analyzer must accept.
package mbufleak_neg

import "github.com/opencloudnext/dhl-go/internal/mbuf"

// FreedOnEveryPath releases the mbuf on both the failure and success path.
func FreedOnEveryPath(p *mbuf.Pool, payload []byte) error {
	m, err := p.Alloc()
	if err != nil {
		return err
	}
	if aerr := m.AppendBytes(payload); aerr != nil {
		_ = p.Free(m)
		return aerr
	}
	return p.Free(m)
}

// HandedOff transfers ownership to the sink; the callee frees.
func HandedOff(p *mbuf.Pool, sink func(*mbuf.Mbuf)) error {
	m, err := p.Alloc()
	if err != nil {
		return err
	}
	sink(m)
	return nil
}

// ReturnedToCaller transfers ownership by returning the mbuf.
func ReturnedToCaller(p *mbuf.Pool) (*mbuf.Mbuf, error) {
	m, err := p.Alloc()
	if err != nil {
		return nil, err
	}
	m.Reset()
	return m, nil
}

// BulkFreed allocates a batch and frees every element.
func BulkFreed(p *mbuf.Pool, dst []*mbuf.Mbuf) error {
	if err := p.AllocBulk(dst); err != nil {
		return err
	}
	return p.FreeBulk(dst)
}
