// Package stagepair_neg holds correct stage-clock code the stagepair
// analyzer must accept.
package stagepair_neg

type Span struct {
	Start    int64
	StageEnd [3]int64
}

type inflight struct {
	span Span
}

func (ib *inflight) telFinalize() {
	ib.span.StageEnd[2] = ib.span.Start
}

// FinalizedOnEveryPath closes the span on both the failure and the
// success path.
func FinalizedOnEveryPath(now int64, fail bool) int {
	ib := &inflight{}
	sp := &ib.span
	sp.Start = now
	if fail {
		ib.telFinalize()
		return 0
	}
	sp.StageEnd[1] = now
	ib.telFinalize()
	return 1
}

// FinalizedThroughAlias starts the clock through the alias and finalizes
// through the root; either name discharges both.
func FinalizedThroughAlias(now int64) {
	ib := &inflight{}
	sp := &ib.span
	sp.Start = now
	ib.telFinalize()
}

// HandedOff returns the span's owner to the caller, who finalizes later.
func HandedOff(now int64) *inflight {
	ib := &inflight{}
	ib.span.Start = now
	return ib
}

// CallerOwned stamps a span reachable from a parameter: the lifecycle
// belongs to the caller, so mid-flight stamps here are fine.
func CallerOwned(ib *inflight, now int64) {
	ib.span.Start = now
	ib.span.StageEnd[0] = now
}

// AllowedDrop is the suppression case: a probe span that is deliberately
// never pushed, documented by the directive.
func AllowedDrop(now int64) {
	ib := &inflight{}
	//dhl:allow stagepair calibration probe, span discarded by design
	ib.span.Start = now
}
