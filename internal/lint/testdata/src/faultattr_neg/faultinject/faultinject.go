// Package faultinject mirrors internal/faultinject's Kind/Plan shape for
// the faultattr fixtures.
package faultinject

// Kind enumerates injectable faults.
type Kind int

// Fault kinds.
const (
	// DMAError fails a DMA post.
	DMAError Kind = iota
	// ModuleHang withholds a module completion.
	ModuleHang
	// NumKinds sizes per-kind tables.
	NumKinds
)

// Plan decides which faults fire.
type Plan struct {
	armed [NumKinds]bool
}

// Fire reports whether kind k strikes now.
func (p *Plan) Fire(k Kind) bool {
	return p.armed[k]
}
