// Package faultattr_neg holds correctly-attributed fault injection the
// faultattr analyzer must accept: every Kind is consumed and every Fire
// guards a counter increment.
package faultattr_neg

import "github.com/opencloudnext/dhl-go/internal/lint/testdata/src/faultattr_neg/faultinject"

type stats struct {
	dmaFaults uint64
	hangs     uint64
	retries   counter
}

type counter struct {
	v uint64
}

func (c *counter) Inc() {
	c.v++
}

// Transfer attributes a DMA fault with a direct increment.
func Transfer(p *faultinject.Plan, s *stats) bool {
	if p.Fire(faultinject.DMAError) {
		s.dmaFaults++
		return false
	}
	return true
}

// Dispatch attributes both kinds: compound increments and Inc calls both
// count as attribution.
func Dispatch(p *faultinject.Plan, s *stats, n uint64) {
	if p.Fire(faultinject.ModuleHang) {
		s.hangs += n
		s.retries.Inc()
	}
}

// AllowedProbe is the suppression case: a dry-run draw used only to
// exercise the plan's RNG stream, documented by the directive.
func AllowedProbe(p *faultinject.Plan) bool {
	return p.Fire(faultinject.DMAError) //dhl:allow faultattr dry-run draw, keeps RNG stream aligned
}
