package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// FaultAttr enforces the PR 4 conservation-ledger contract between fault
// injection and drop attribution, in two directions:
//
//  1. Exhaustiveness: every faultinject fault kind (the constants of the
//     Kind enum, NumKinds excluded) must be consumed somewhere outside
//     the faultinject package itself. A kind nobody draws and attributes
//     is a chaos-soak surprise waiting to happen: adding the enum value
//     without wiring its ledger entry now fails the lint gate instead of
//     failing TestPacketConservation three PRs later.
//  2. Attribution: every Plan.Fire call site must sit in an if-condition
//     whose guarded body increments a counter (x++, x += n, or an
//     Inc/Add call) — firing a fault without booking it anywhere breaks
//     the packet-conservation ledger silently.
//
// The enum is discovered by shape, not import path — an in-module
// package named faultinject declaring a Kind type — so the golden
// fixtures can carry a mirror of it.
type FaultAttr struct{}

// Name implements Analyzer.
func (*FaultAttr) Name() string { return "faultattr" }

// Doc implements Analyzer.
func (*FaultAttr) Doc() string {
	return "flags faultinject Kinds with no attribution site and Plan.Fire calls whose result does not guard a counter increment"
}

// Check implements Analyzer; per-package operation delegates to the
// module-wide pass so direct use still works.
func (f *FaultAttr) Check(pkg *Package) []Finding {
	return f.CheckModule([]*Package{pkg})
}

// CheckModule implements ModuleAnalyzer.
func (f *FaultAttr) CheckModule(pkgs []*Package) []Finding {
	if len(pkgs) == 0 {
		return nil
	}
	fset := pkgs[0].Fset
	var out []Finding

	// Rule 1: every kind of every discovered enum is consumed outside its
	// defining package. The rule only judges enums whose defining package
	// is itself in the analyzed set: on a partial run (dhl-lint
	// ./internal/core) the packages holding the attribution sites may not
	// be loaded, and flagging their kinds would be noise, not signal.
	for _, enum := range findFaultEnums(pkgs) {
		used := make(map[types.Object]bool)
		for _, pkg := range pkgs {
			if pkg.Types == enum.pkg {
				continue
			}
			for _, obj := range pkg.Info.Uses {
				if enum.kinds[obj] {
					used[obj] = true
				}
			}
		}
		for _, k := range enum.ordered {
			if used[k] {
				continue
			}
			out = append(out, finding(f.Name(), fset.Position(k.Pos()),
				"fault kind %s has no attribution site outside package %s: every injectable fault must map to a drop/ledger counter",
				k.Name(), enum.pkg.Name()))
		}
	}

	// Rule 2: every Plan.Fire call guards a counter increment.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			attributed := make(map[*ast.CallExpr]bool)
			ast.Inspect(file, func(n ast.Node) bool {
				ifs, ok := n.(*ast.IfStmt)
				if !ok {
					return true
				}
				fires := fireCallsIn(pkg.Info, ifs.Cond)
				if len(fires) == 0 || !hasIncrement(ifs.Body) {
					return true
				}
				for _, c := range fires {
					attributed[c] = true
				}
				return true
			})
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || attributed[call] {
					return true
				}
				if !methodOnAnyNamed(calleeOf(pkg.Info, call), "Plan", "Fire") {
					return true
				}
				out = append(out, finding(f.Name(), pkg.Position(call.Pos()),
					"Plan.Fire result does not guard a counter increment: an injected fault must be attributed where it fires"))
				return true
			})
		}
	}
	return out
}

// faultEnum is one discovered fault-kind enumeration.
type faultEnum struct {
	pkg     *types.Package
	kinds   map[types.Object]bool
	ordered []types.Object // declaration order, for stable findings
}

// findFaultEnums locates every analyzed in-module package named
// faultinject that declares a Kind type, and collects its constants
// (NumKinds excluded). Only packages in the analyzed set qualify:
// exhaustiveness over an enum is meaningless unless its consumers were
// loaded too, and the analyzed set is the caller's statement of scope.
func findFaultEnums(pkgs []*Package) []*faultEnum {
	seen := make(map[*types.Package]bool)
	var candidates []*types.Package
	for _, pkg := range pkgs {
		tp := pkg.Types
		if tp == nil || seen[tp] {
			continue
		}
		seen[tp] = true
		if tp.Name() == "faultinject" && inModule(tp.Path()) {
			candidates = append(candidates, tp)
		}
	}
	var enums []*faultEnum
	for _, tp := range candidates {
		tn, ok := tp.Scope().Lookup("Kind").(*types.TypeName)
		if !ok {
			continue
		}
		e := &faultEnum{pkg: tp, kinds: make(map[types.Object]bool)}
		for _, name := range tp.Scope().Names() {
			c, ok := tp.Scope().Lookup(name).(*types.Const)
			if !ok || name == "NumKinds" {
				continue
			}
			if namedOf(c.Type()) != nil && namedOf(c.Type()).Obj() == tn {
				e.kinds[c] = true
				e.ordered = append(e.ordered, c)
			}
		}
		sort.Slice(e.ordered, func(i, j int) bool { return e.ordered[i].Pos() < e.ordered[j].Pos() })
		if len(e.ordered) > 0 {
			enums = append(enums, e)
		}
	}
	return enums
}

// fireCallsIn collects the Plan.Fire calls appearing inside an expression.
func fireCallsIn(info *types.Info, e ast.Expr) []*ast.CallExpr {
	if e == nil {
		return nil
	}
	var out []*ast.CallExpr
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if methodOnAnyNamed(calleeOf(info, call), "Plan", "Fire") {
				out = append(out, call)
			}
		}
		return true
	})
	return out
}

// hasIncrement reports whether the block contains a counter increment:
// x++, x += n, or a call to a method named Inc or Add.
func hasIncrement(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if n.Tok == token.INC {
				found = true
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Inc" || sel.Sel.Name == "Add" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
