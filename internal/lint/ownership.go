package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared intra-procedural ownership/CFG walker behind the
// leak-shaped analyzers (mbufleak, arenalease, stagepair). Each of those
// invariants has the same skeleton — an acquisition creates an obligation
// bound to a variable, control flow is walked path-sensitively, and any
// path to a return on which the obligation was neither released nor
// handed off is a finding — so the skeleton lives here once and the
// analyzers supply an ownPolicy describing what acquires, what finalizes
// and how to word the diagnostic.
//
// The analysis is deliberately generous about what counts as a transfer
// (any use of the tracked variable as a call argument, return value,
// assignment source, composite-literal element or channel send releases
// the obligation); what it flags is the unambiguous case — an acquisition
// with a path to a return that never hands the resource to anyone.

// acqSpec classifies one acquiring call.
type acqSpec struct {
	// kind names the acquisition in diagnostics (Alloc, AllocBulk, lease).
	kind string
	// argBind binds the obligation to the call's first argument instead of
	// the assignment's first result (mbuf.Pool.AllocBulk(dst) style).
	argBind bool
}

// ownPolicy parameterizes the tracker for one analyzer.
type ownPolicy struct {
	// analyzer is the owning analyzer's name, used on findings.
	analyzer string
	// acquireCall classifies a call expression as an acquisition.
	acquireCall func(info *types.Info, call *ast.CallExpr) (acqSpec, bool)
	// stampAssign, optional, inspects every assignment for non-call
	// acquisitions and alias registrations (stagepair's span stamps).
	stampAssign func(t *ownTracker, s *ast.AssignStmt)
	// finalizers are method names whose call discharges the obligation on
	// the receiver's root variable (resolved through aliases).
	finalizers map[string]bool
	// trackBound lets obligations attach to the function's own receiver,
	// parameters and named results. mbufleak wants this (Retain(m) on a
	// parameter creates a new reference the function owns); the
	// object-lifecycle analyzers do not (a parameter's lease belongs to
	// the caller).
	trackBound bool
	// message renders one finding. exitLine is the offending return's line.
	message func(fn string, o *obligation, exitLine int) string
}

// obligation is one pending acquisition inside a function.
type obligation struct {
	v        *types.Var
	errVar   types.Object // error result of the acquiring call, if bound
	kind     string
	pos      token.Pos
	released bool
	reported bool
	suppress int // >0 while inside a branch guarded by errVar
}

// checkOwnership runs the policy over every function declaration and
// literal of the package.
func checkOwnership(pkg *Package, p *ownPolicy) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					t := newOwnTracker(pkg, p)
					t.bindParams(n.Recv, n.Type)
					t.checkFunc(n.Name.Name, n.Body)
					out = append(out, t.out...)
				}
			case *ast.FuncLit:
				// Each literal is analyzed as its own function; the
				// statement walk never descends into literal bodies for
				// acquisition purposes.
				t := newOwnTracker(pkg, p)
				t.bindParams(nil, n.Type)
				t.checkFunc("func literal", n.Body)
				out = append(out, t.out...)
			}
			return true
		})
	}
	return out
}

// ownTracker runs the per-function analysis.
type ownTracker struct {
	p   *ownPolicy
	pkg *Package
	out []Finding
	fn  string
	// obls maps each tracked root variable to its obligation.
	obls map[*types.Var]*obligation
	// aliases maps a local pointer variable to the root variable whose
	// state it aliases (sp := &ib.span makes sp an alias of ib), so a
	// transfer or finalize through either name discharges the obligation.
	aliases map[*types.Var]*types.Var
	// bound holds the function's receiver, parameters and named results:
	// obligations never attach to them (their owner is the caller).
	bound map[*types.Var]bool
}

func newOwnTracker(pkg *Package, p *ownPolicy) *ownTracker {
	return &ownTracker{
		p:       p,
		pkg:     pkg,
		obls:    make(map[*types.Var]*obligation),
		aliases: make(map[*types.Var]*types.Var),
		bound:   make(map[*types.Var]bool),
	}
}

func (t *ownTracker) info() *types.Info { return t.pkg.Info }

// bindParams records the receiver, parameters and named results as bound.
func (t *ownTracker) bindParams(recv *ast.FieldList, ft *ast.FuncType) {
	lists := []*ast.FieldList{recv, ft.Params, ft.Results}
	for _, l := range lists {
		if l == nil {
			continue
		}
		for _, f := range l.List {
			for _, name := range f.Names {
				if v, ok := objOf(t.info(), name).(*types.Var); ok {
					t.bound[v] = true
				}
			}
		}
	}
}

func (t *ownTracker) checkFunc(name string, body *ast.BlockStmt) {
	t.fn = name
	t.walkStmts(body.List)
	// Implicit return at the end of the body.
	if n := len(body.List); n == 0 || !isTerminal(body.List[n-1]) {
		t.reportPending(body.Rbrace)
	}
}

// isTerminal reports whether a statement already ends the flow (so the
// implicit end-of-body return is unreachable or was already checked).
func isTerminal(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		return s.Cond == nil // for {} without break analysis: treat as non-returning
	}
	return false
}

// reportPending emits one finding per live, unsuppressed obligation.
func (t *ownTracker) reportPending(at token.Pos) {
	for _, o := range t.obls {
		if o.released || o.reported || o.suppress > 0 {
			continue
		}
		o.reported = true
		exit := t.pkg.Position(at)
		t.out = append(t.out, finding(t.p.analyzer, t.pkg.Position(o.pos),
			"%s", t.p.message(t.fn, o, exit.Line)))
	}
}

// track registers a new obligation for v unless v is bound to the caller.
func (t *ownTracker) track(v *types.Var, errVar types.Object, kind string, pos token.Pos) {
	if v == nil || (t.bound[v] && !t.p.trackBound) {
		return
	}
	t.obls[v] = &obligation{v: v, errVar: errVar, kind: kind, pos: pos}
}

// resolveAlias follows the alias chain from v to its root.
func (t *ownTracker) resolveAlias(v *types.Var) *types.Var {
	for i := 0; i < 8; i++ { // alias chains are short; bound cycles
		next, ok := t.aliases[v]
		if !ok {
			return v
		}
		v = next
	}
	return v
}

// release discharges the obligation on v (and on its alias root).
func (t *ownTracker) release(v *types.Var) {
	if o, ok := t.obls[v]; ok {
		o.released = true
	}
	if root := t.resolveAlias(v); root != v {
		if o, ok := t.obls[root]; ok {
			o.released = true
		}
	}
}

// finalizeCall discharges the receiver root of a policy finalizer call
// (ib.telFinalize(...) releases ib's obligation).
func (t *ownTracker) finalizeCall(call *ast.CallExpr) {
	if len(t.p.finalizers) == 0 {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !t.p.finalizers[sel.Sel.Name] {
		return
	}
	if root := rootVar(t.info(), sel.X); root != nil {
		t.release(root)
	}
}

// scanTransfer walks an expression in ownership-transfer position and
// releases every tracked variable it mentions directly. Selector
// expressions are skipped entirely: `m.SetLen(5)` and `copy(m.Data(), p)`
// are uses of the resource, not transfers of its ownership — except for
// policy finalizer methods, which discharge their receiver.
func (t *ownTracker) scanTransfer(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			t.finalizeCall(n)
		case *ast.SelectorExpr:
			return false
		case *ast.Ident:
			if v, ok := objOf(t.info(), n).(*types.Var); ok {
				t.release(v)
			}
		}
		return true
	})
}

// scanCalls walks an expression in a non-transfer position (a condition)
// and applies transfer scanning only to call arguments, so `if m != nil`
// releases nothing but `if !q.Enqueue(m)` releases m.
func (t *ownTracker) scanCalls(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			t.finalizeCall(call)
			for _, a := range call.Args {
				t.scanTransfer(a)
			}
		}
		return true
	})
}

// mentionsErrVar reports which live obligations have their error variable
// referenced by cond (the classic `if err != nil` guard).
func (t *ownTracker) mentionsErrVar(cond ast.Expr) []*obligation {
	if cond == nil {
		return nil
	}
	var hit []*obligation
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := objOf(t.info(), id)
		if obj == nil {
			return true
		}
		for _, o := range t.obls {
			if o.errVar != nil && o.errVar == obj {
				hit = append(hit, o)
			}
		}
		return true
	})
	return hit
}

func (t *ownTracker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		t.walkStmt(s)
	}
}

func (t *ownTracker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				if spec, ok := t.p.acquireCall(t.info(), call); ok {
					t.trackFromCall(spec, call, s.Lhs)
					return
				}
			}
		}
		if t.p.stampAssign != nil {
			t.p.stampAssign(t, s)
		}
		for _, rhs := range s.Rhs {
			t.scanTransfer(rhs)
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if spec, ok := t.p.acquireCall(t.info(), call); ok {
				t.trackFromCall(spec, call, nil)
				return
			}
		}
		t.scanTransfer(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			t.scanTransfer(r)
		}
		t.reportPending(s.Pos())
	case *ast.IfStmt:
		if s.Init != nil {
			t.walkStmt(s.Init)
		}
		t.scanCalls(s.Cond)
		guarded := t.mentionsErrVar(s.Cond)
		for _, o := range guarded {
			o.suppress++
		}
		t.walkStmts(s.Body.List)
		if s.Else != nil {
			t.walkStmt(s.Else)
		}
		for _, o := range guarded {
			o.suppress--
		}
	case *ast.BlockStmt:
		t.walkStmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			t.walkStmt(s.Init)
		}
		t.scanCalls(s.Cond)
		if s.Post != nil {
			t.walkStmt(s.Post)
		}
		t.walkStmts(s.Body.List)
	case *ast.RangeStmt:
		t.scanTransfer(s.X) // iterating a tracked batch is a disposal loop
		t.walkStmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			t.walkStmt(s.Init)
		}
		t.scanCalls(s.Tag)
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				t.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			t.walkStmt(s.Init)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				t.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				if cc.Comm != nil {
					t.walkStmt(cc.Comm)
				}
				t.walkStmts(cc.Body)
			}
		}
	case *ast.DeferStmt:
		t.scanTransfer(s.Call)
	case *ast.GoStmt:
		t.scanTransfer(s.Call)
	case *ast.SendStmt:
		t.scanTransfer(s.Value)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						t.scanTransfer(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		t.walkStmt(s.Stmt)
	}
}

// trackFromCall registers the obligation created by an acquiring call.
// lhs is the assignment left-hand side, or nil for a bare statement call.
func (t *ownTracker) trackFromCall(spec acqSpec, call *ast.CallExpr, lhs []ast.Expr) {
	info := t.info()
	var v *types.Var
	var errVar types.Object
	if spec.argBind {
		// pool.AllocBulk(dst) / pool.Retain(m): the obligation lands on
		// the argument; the (single) result is the error.
		if len(call.Args) > 0 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				v, _ = objOf(info, id).(*types.Var)
			}
		}
		if len(lhs) > 0 {
			if id, ok := ast.Unparen(lhs[0]).(*ast.Ident); ok && id.Name != "_" {
				errVar = objOf(info, id)
			}
		}
	} else {
		// m, err := pool.Alloc(): a dropped result cannot leak (nothing
		// is bound), so bare calls are ignored here (checkederr owns that).
		if len(lhs) > 0 {
			if id, ok := ast.Unparen(lhs[0]).(*ast.Ident); ok && id.Name != "_" {
				v, _ = objOf(info, id).(*types.Var)
			}
		}
		if len(lhs) > 1 {
			if id, ok := ast.Unparen(lhs[1]).(*ast.Ident); ok && id.Name != "_" {
				errVar = objOf(info, id)
			}
		}
	}
	t.track(v, errVar, spec.kind, call.Pos())
}

// rootVar resolves the base variable of a selector/index/deref chain:
// rootVar(ib.span.StageEnd[k]) is ib's variable. Expressions without a
// stable base identifier yield nil.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := objOf(info, x).(*types.Var)
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}
