package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// StagePair enforces the PR 5 telemetry contract: a batch trace Span
// whose stage clock has been started (a write to its Start field) must,
// on every path out of the function, either be finalized (telFinalize,
// which stamps the terminal stage and pushes the span into the ring) or
// handed off with its owner — returned to the caller, stored, or passed
// along. A started-but-never-finalized span silently loses the batch's
// stage histogram contribution, which is exactly the failure mode the
// golden-exporter test cannot see (the span simply isn't there).
//
// The analyzer understands the idiomatic alias form `sp := &ib.span`:
// stamps through sp create the obligation on ib, and discharging either
// name discharges both. Functions stamping a span reachable from their
// own receiver or parameters are exempt — the span's lifecycle belongs
// to their caller.
type StagePair struct{}

// Name implements Analyzer.
func (*StagePair) Name() string { return "stagepair" }

// Doc implements Analyzer.
func (*StagePair) Doc() string {
	return "flags functions that start a telemetry Span's stage clock and can return without telFinalize or handing the span off"
}

// Check implements Analyzer.
func (s *StagePair) Check(pkg *Package) []Finding {
	return checkOwnership(pkg, &ownPolicy{
		analyzer:    s.Name(),
		acquireCall: func(*types.Info, *ast.CallExpr) (acqSpec, bool) { return acqSpec{}, false },
		stampAssign: spanStampAssign,
		finalizers:  map[string]bool{"telFinalize": true},
		message: func(fn string, o *obligation, exitLine int) string {
			return fmt.Sprintf("%s: span of %q has its stage clock started but function can return (line %d) without telFinalize or handing the span off",
				fn, o.v.Name(), exitLine)
		},
	})
}

// spanStampAssign inspects one assignment for the two statements the span
// protocol is made of: alias bindings (`sp := &ib.span`) and Start stamps
// (`sp.Start = t0`), which create the finalize obligation.
func spanStampAssign(t *ownTracker, s *ast.AssignStmt) {
	info := t.info()
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			un, ok := ast.Unparen(rhs).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND || !isSpanType(info.Types[un.X].Type) {
				continue
			}
			id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			lv, ok := objOf(info, id).(*types.Var)
			if !ok {
				continue
			}
			if root := rootVar(info, un.X); root != nil && root != lv {
				t.aliases[lv] = root
			}
		}
	}
	for _, lhs := range s.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || !isSpanStartField(info, sel) {
			continue
		}
		root := rootVar(info, sel.X)
		if root == nil {
			continue
		}
		t.track(t.resolveAlias(root), nil, "Start", s.Pos())
	}
}

// isSpanStartField reports whether sel denotes the Start field of an
// in-module type named Span.
func isSpanStartField(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal || s.Obj().Name() != "Start" {
		return false
	}
	return isSpanType(s.Recv())
}

// isSpanType reports whether t is (a pointer to) an in-module type named
// Span.
func isSpanType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Name() == "Span" &&
		n.Obj().Pkg() != nil && inModule(n.Obj().Pkg().Path())
}
