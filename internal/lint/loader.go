package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Position resolves a node position against the package's file set.
func (p *Package) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// Loader parses and type-checks packages of one module. Imports inside the
// module are resolved against the module tree itself; standard-library
// imports fall back to go/importer's source importer, so the whole pipeline
// works offline with nothing but GOROOT sources.
type Loader struct {
	Root string // absolute module root (directory containing go.mod)
	Path string // module path declared in go.mod

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader builds a Loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    abs,
		Path:    modPath,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// Import implements types.Importer: module-internal paths are resolved by
// loading the corresponding directory; everything else (the standard
// library) is delegated to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if inModulePath(l.Path, path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func inModulePath(modPath, path string) bool {
	return path == modPath || strings.HasPrefix(path, modPath+"/")
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.Path {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Path+"/")))
}

// pathFor maps a directory inside the module to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Path, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.Root)
	}
	return l.Path + "/" + filepath.ToSlash(rel), nil
}

// LoadDir loads the package in one directory (which must be inside the
// module tree — testdata fixtures included).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.load(path)
}

// load parses and type-checks one module-internal package, memoized.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.dirFor(path)
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Dir:        dir,
		ImportPath: path,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses the non-test Go files of one directory.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadAll loads every package in the module, skipping testdata fixtures
// and hidden directories. Test files are never analyzed: the invariants
// dhl-lint enforces are production data-path contracts, and tests routinely
// violate them on purpose (deliberate leaks, stress rings).
func (l *Loader) LoadAll() ([]*Package, error) {
	var pkgs []*Package
	var dirs []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
