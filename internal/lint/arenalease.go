package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ArenaLease enforces the batchArena segment contract from PR 3: a
// function that leases a staging segment (`batchArena.lease()`) must, on
// every path out, either return it (`batchArena.ret(b)`) or hand it off —
// store it into an inflight/dispatchCtx field, pass it to a helper, or
// return it to the caller. A leaked lease silently shrinks the arena's
// freelist until the hot path falls back to grow(), which allocates.
//
// batchArena is unexported, so the match is by receiver type name
// anywhere in the module (which also lets the golden fixtures declare a
// mirror of it). The path-sensitive walk is shared with mbufleak and
// stagepair (ownership.go); passing the segment to ret — or to anything
// else — discharges the obligation.
type ArenaLease struct{}

// Name implements Analyzer.
func (*ArenaLease) Name() string { return "arenalease" }

// Doc implements Analyzer.
func (*ArenaLease) Doc() string {
	return "flags functions that lease a batchArena segment and can return without ret or handing it off"
}

// Check implements Analyzer.
func (a *ArenaLease) Check(pkg *Package) []Finding {
	return checkOwnership(pkg, &ownPolicy{
		analyzer:    a.Name(),
		acquireCall: arenaAcquire,
		message: func(fn string, o *obligation, exitLine int) string {
			return fmt.Sprintf("%s: arena segment %q obtained via %s may leak: function can return (line %d) without ret or handing it off",
				fn, o.v.Name(), o.kind, exitLine)
		},
	})
}

// arenaAcquire classifies a lease-acquiring call.
func arenaAcquire(info *types.Info, call *ast.CallExpr) (acqSpec, bool) {
	if methodOnAnyNamed(calleeOf(info, call), "batchArena", "lease") {
		return acqSpec{kind: "lease"}, true
	}
	return acqSpec{}, false
}
