package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MbufLeak enforces the DPDK mempool contract on mbuf ownership: a
// function that obtains buffers from mbuf.Pool.Alloc/AllocBulk/Retain (or
// Cache.Alloc) must, on every path out, either release them (Pool.Free/
// FreeBulk) or hand ownership elsewhere — enqueue onto a ring, pass to
// SendPackets or any helper, store into a field/slice, or return them to
// the caller.
//
// The analysis is intra-procedural and deliberately generous about what
// counts as an ownership transfer (any use of the tracked variable as a
// call argument, return value, assignment source, composite-literal
// element or channel send releases the obligation); what it flags is the
// unambiguous case — an acquisition with a path to a return that never
// hands the buffer to anyone. Error-check branches guarding the
// acquisition's own error variable are recognised and exempt (the mbuf was
// never allocated on those paths).
type MbufLeak struct{}

// Name implements Analyzer.
func (*MbufLeak) Name() string { return "mbufleak" }

// Doc implements Analyzer.
func (*MbufLeak) Doc() string {
	return "flags functions that obtain mbufs (Pool.Alloc/AllocBulk/Retain) and can return without freeing or handing them off"
}

// Check implements Analyzer.
func (m *MbufLeak) Check(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c := &leakChecker{an: m, pkg: pkg}
					c.checkFunc(n.Name.Name, n.Body)
					out = append(out, c.out...)
				}
			case *ast.FuncLit:
				// Each literal is analyzed as its own function; the
				// statement walk above never descends into literal bodies.
				c := &leakChecker{an: m, pkg: pkg}
				c.checkFunc("func literal", n.Body)
				out = append(out, c.out...)
			}
			return true
		})
	}
	return out
}

// obligation is one pending buffer acquisition inside a function.
type obligation struct {
	v        *types.Var
	errVar   types.Object // error result of the acquiring call, if bound
	kind     string       // Alloc, AllocBulk, Retain
	pos      token.Pos
	released bool
	reported bool
	suppress int // >0 while inside a branch guarded by errVar
}

// leakChecker runs the per-function analysis.
type leakChecker struct {
	an   *MbufLeak
	pkg  *Package
	out  []Finding
	fn   string
	obls map[*types.Var]*obligation
}

func (c *leakChecker) info() *types.Info { return c.pkg.Info }

func (c *leakChecker) checkFunc(name string, body *ast.BlockStmt) {
	c.fn = name
	c.obls = make(map[*types.Var]*obligation)
	c.walkStmts(body.List)
	// Implicit return at the end of the body.
	if n := len(body.List); n == 0 || !isTerminal(body.List[n-1]) {
		c.reportPending(body.Rbrace)
	}
}

// isTerminal reports whether a statement already ends the flow (so the
// implicit end-of-body return is unreachable or was already checked).
func isTerminal(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.ForStmt:
		return s.Cond == nil // for {} without break analysis: treat as non-returning
	}
	return false
}

// reportPending emits one finding per live, unsuppressed obligation.
func (c *leakChecker) reportPending(at token.Pos) {
	for _, o := range c.obls {
		if o.released || o.reported || o.suppress > 0 {
			continue
		}
		o.reported = true
		exit := c.pkg.Position(at)
		c.out = append(c.out, finding(c.an.Name(), c.pkg.Position(o.pos),
			"%s: mbuf %q obtained via %s may leak: function can return (line %d) without Free or handing ownership off",
			c.fn, o.v.Name(), o.kind, exit.Line))
	}
}

// allocKind classifies an acquiring call.
func allocKind(info *types.Info, call *ast.CallExpr) (string, bool) {
	f := calleeOf(info, call)
	switch {
	case methodOn(f, mbufPkgPath, "Pool", "Alloc") || methodOn(f, mbufPkgPath, "Cache", "Alloc"):
		return "Alloc", true
	case methodOn(f, mbufPkgPath, "Pool", "AllocBulk"):
		return "AllocBulk", true
	case methodOn(f, mbufPkgPath, "Pool", "Retain"):
		return "Retain", true
	}
	return "", false
}

// track registers a new obligation for v.
func (c *leakChecker) track(v *types.Var, errVar types.Object, kind string, pos token.Pos) {
	if v == nil {
		return
	}
	c.obls[v] = &obligation{v: v, errVar: errVar, kind: kind, pos: pos}
}

// release discharges the obligation on v, if tracked.
func (c *leakChecker) release(v *types.Var) {
	if o, ok := c.obls[v]; ok {
		o.released = true
	}
}

// scanTransfer walks an expression in ownership-transfer position and
// releases every tracked variable it mentions directly. Selector
// expressions are skipped entirely: `m.SetLen(5)` and `copy(m.Data(), p)`
// are uses of the buffer, not transfers of its ownership.
func (c *leakChecker) scanTransfer(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			return false
		case *ast.Ident:
			if v, ok := objOf(c.info(), n).(*types.Var); ok {
				c.release(v)
			}
		}
		return true
	})
}

// scanCalls walks an expression in a non-transfer position (a condition)
// and applies transfer scanning only to call arguments, so `if m != nil`
// releases nothing but `if !q.Enqueue(m)` releases m.
func (c *leakChecker) scanCalls(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			for _, a := range call.Args {
				c.scanTransfer(a)
			}
		}
		return true
	})
}

// mentionsErrVar reports which live obligations have their error variable
// referenced by cond (the classic `if err != nil` guard).
func (c *leakChecker) mentionsErrVar(cond ast.Expr) []*obligation {
	if cond == nil {
		return nil
	}
	var hit []*obligation
	ast.Inspect(cond, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := objOf(c.info(), id)
		if obj == nil {
			return true
		}
		for _, o := range c.obls {
			if o.errVar != nil && o.errVar == obj {
				hit = append(hit, o)
			}
		}
		return true
	})
	return hit
}

func (c *leakChecker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		c.walkStmt(s)
	}
}

func (c *leakChecker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				if kind, ok := allocKind(c.info(), call); ok {
					c.trackFromCall(kind, call, s.Lhs)
					return
				}
			}
		}
		for _, rhs := range s.Rhs {
			c.scanTransfer(rhs)
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if kind, ok := allocKind(c.info(), call); ok {
				c.trackFromCall(kind, call, nil)
				return
			}
		}
		c.scanTransfer(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.scanTransfer(r)
		}
		c.reportPending(s.Pos())
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init)
		}
		c.scanCalls(s.Cond)
		guarded := c.mentionsErrVar(s.Cond)
		for _, o := range guarded {
			o.suppress++
		}
		c.walkStmts(s.Body.List)
		if s.Else != nil {
			c.walkStmt(s.Else)
		}
		for _, o := range guarded {
			o.suppress--
		}
	case *ast.BlockStmt:
		c.walkStmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init)
		}
		c.scanCalls(s.Cond)
		if s.Post != nil {
			c.walkStmt(s.Post)
		}
		c.walkStmts(s.Body.List)
	case *ast.RangeStmt:
		c.scanTransfer(s.X) // iterating a tracked batch is a disposal loop
		c.walkStmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init)
		}
		c.scanCalls(s.Tag)
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				if cc.Comm != nil {
					c.walkStmt(cc.Comm)
				}
				c.walkStmts(cc.Body)
			}
		}
	case *ast.DeferStmt:
		c.scanTransfer(s.Call)
	case *ast.GoStmt:
		c.scanTransfer(s.Call)
	case *ast.SendStmt:
		c.scanTransfer(s.Value)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanTransfer(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt)
	}
}

// trackFromCall registers the obligation created by an acquiring call.
// lhs is the assignment left-hand side, or nil for a bare statement call.
func (c *leakChecker) trackFromCall(kind string, call *ast.CallExpr, lhs []ast.Expr) {
	info := c.info()
	var v *types.Var
	var errVar types.Object
	switch kind {
	case "Alloc":
		// m, err := pool.Alloc(): a dropped result cannot leak (nothing
		// is bound), so bare calls are ignored here (checkederr owns that).
		if len(lhs) > 0 {
			if id, ok := ast.Unparen(lhs[0]).(*ast.Ident); ok && id.Name != "_" {
				v, _ = objOf(info, id).(*types.Var)
			}
		}
		if len(lhs) > 1 {
			if id, ok := ast.Unparen(lhs[1]).(*ast.Ident); ok && id.Name != "_" {
				errVar = objOf(info, id)
			}
		}
	case "AllocBulk", "Retain":
		// pool.AllocBulk(dst) / pool.Retain(m): the obligation lands on
		// the argument; the (single) result is the error.
		if len(call.Args) > 0 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				v, _ = objOf(info, id).(*types.Var)
			}
		}
		if len(lhs) > 0 {
			if id, ok := ast.Unparen(lhs[0]).(*ast.Ident); ok && id.Name != "_" {
				errVar = objOf(info, id)
			}
		}
	}
	c.track(v, errVar, kind, call.Pos())
}
