package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MbufLeak enforces the DPDK mempool contract on mbuf ownership: a
// function that obtains buffers from mbuf.Pool.Alloc/AllocBulk/Retain (or
// Cache.Alloc) must, on every path out, either release them (Pool.Free/
// FreeBulk) or hand ownership elsewhere — enqueue onto a ring, pass to
// SendPackets or any helper, store into a field/slice, or return them to
// the caller.
//
// The path-sensitive machinery lives in ownership.go (shared with
// arenalease and stagepair); this file only describes what acquires an
// mbuf and how to word the leak. Error-check branches guarding the
// acquisition's own error variable are recognised and exempt (the mbuf
// was never allocated on those paths).
type MbufLeak struct{}

// Name implements Analyzer.
func (*MbufLeak) Name() string { return "mbufleak" }

// Doc implements Analyzer.
func (*MbufLeak) Doc() string {
	return "flags functions that obtain mbufs (Pool.Alloc/AllocBulk/Retain) and can return without freeing or handing them off"
}

// Check implements Analyzer.
func (m *MbufLeak) Check(pkg *Package) []Finding {
	return checkOwnership(pkg, &ownPolicy{
		analyzer:    m.Name(),
		acquireCall: mbufAcquire,
		trackBound:  true, // Retain(m)/AllocBulk(dst) on a parameter still acquires
		message: func(fn string, o *obligation, exitLine int) string {
			return fmt.Sprintf("%s: mbuf %q obtained via %s may leak: function can return (line %d) without Free or handing ownership off",
				fn, o.v.Name(), o.kind, exitLine)
		},
	})
}

// mbufAcquire classifies an mbuf-acquiring call.
func mbufAcquire(info *types.Info, call *ast.CallExpr) (acqSpec, bool) {
	f := calleeOf(info, call)
	switch {
	case methodOn(f, mbufPkgPath, "Pool", "Alloc") || methodOn(f, mbufPkgPath, "Cache", "Alloc"):
		return acqSpec{kind: "Alloc"}, true
	case methodOn(f, mbufPkgPath, "Pool", "AllocBulk"):
		return acqSpec{kind: "AllocBulk", argBind: true}, true
	case methodOn(f, mbufPkgPath, "Pool", "Retain"):
		return acqSpec{kind: "Retain", argBind: true}, true
	}
	return acqSpec{}, false
}
