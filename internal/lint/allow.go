package lint

import (
	"go/ast"
	"strings"
)

// AllowDirective is the comment directive that suppresses one analyzer's
// finding on the line it annotates:
//
//	ev := &event{...} //dhl:allow escapecheck freelist refill is cold
//
// or, on the line directly above the finding:
//
//	//dhl:allow arenalease handed to the watchdog, returned on expiry
//	b := t.arena.lease()
//
// A directive must name the analyzer it silences and carry a non-empty
// justification; a bare `//dhl:allow arenalease` is ignored (and so still
// fails the gate), which keeps every suppression self-documenting.
const AllowDirective = "dhl:allow"

// allowIndex records, per file and line, which analyzers have been
// granted a suppression there.
type allowIndex map[string]map[int][]string

// buildAllowIndex scans every comment of every package for
// //dhl:allow directives.
func buildAllowIndex(pkgs []*Package) allowIndex {
	idx := make(allowIndex)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					name, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Position(c.Pos())
					lines := idx[pos.Filename]
					if lines == nil {
						lines = make(map[int][]string)
						idx[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], name)
				}
			}
		}
	}
	return idx
}

// parseAllow extracts the analyzer name from one comment's text, requiring
// a justification after the name.
func parseAllow(text string) (string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	rest, ok := strings.CutPrefix(text, AllowDirective)
	if !ok {
		return "", false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 { // analyzer name plus at least one reason word
		return "", false
	}
	return fields[0], true
}

// allows reports whether a finding by the named analyzer at file:line is
// covered by a directive on the same line or the line above.
func (idx allowIndex) allows(f Finding) bool {
	lines, ok := idx[f.File]
	if !ok {
		return false
	}
	for _, line := range [2]int{f.Line, f.Line - 1} {
		for _, name := range lines[line] {
			if name == f.Analyzer {
				return true
			}
		}
	}
	return false
}

// filterAllowed drops findings covered by an allow directive.
func filterAllowed(all []Finding, idx allowIndex) []Finding {
	if len(idx) == 0 {
		return all
	}
	kept := all[:0]
	for _, f := range all {
		if !idx.allows(f) {
			kept = append(kept, f)
		}
	}
	return kept
}

// hasAllowComment reports whether any comment attached to n's line range
// in file suppresses the named analyzer. Analyzers that position findings
// away from the directive line (none currently) can use this directly.
func hasAllowComment(pkg *Package, file *ast.File, line int, analyzer string) bool {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			name, ok := parseAllow(c.Text)
			if !ok || name != analyzer {
				continue
			}
			cl := pkg.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}
