package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces access-discipline consistency for struct fields
// shared through sync/atomic: a field that is passed to any sync/atomic
// function (atomic.AddUint64(&s.n, 1), atomic.LoadInt64(&s.seq), ...)
// anywhere in the module must be accessed through sync/atomic everywhere
// in the module. A single plain read of such a field is a data race the
// race detector only catches if the interleaving happens in a test run;
// this gate catches it at review time.
//
// The check is module-wide (a field atomically written in one package and
// plainly read in another is precisely the bug), which is why it is a
// ModuleAnalyzer. Typed atomics (atomic.Uint64 and friends, which the
// telemetry counters use) make this mistake unrepresentable and are out
// of scope. Keyed composite-literal initialization is exempt: a struct
// under construction is not yet shared.
type AtomicField struct{}

// Name implements Analyzer.
func (*AtomicField) Name() string { return "atomicfield" }

// Doc implements Analyzer.
func (*AtomicField) Doc() string {
	return "flags plain accesses to struct fields that are accessed via sync/atomic elsewhere in the module"
}

// Check implements Analyzer; per-package operation delegates to the
// module-wide pass so direct use still works.
func (a *AtomicField) Check(pkg *Package) []Finding {
	return a.CheckModule([]*Package{pkg})
}

// CheckModule implements ModuleAnalyzer.
func (a *AtomicField) CheckModule(pkgs []*Package) []Finding {
	// Pass 1: collect every field that some sync/atomic call addresses,
	// remembering one representative site for the diagnostic, and every
	// selector node that appears inside such a call (those are the
	// compliant accesses).
	atomicFields := make(map[*types.Var]token.Position)
	compliant := make(map[*ast.SelectorExpr]bool)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isSyncAtomicCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					compliant[sel] = true
					if f := fieldOfSelector(pkg.Info, sel); f != nil {
						if _, seen := atomicFields[f]; !seen {
							atomicFields[f] = pkg.Position(un.Pos())
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: flag every other selector resolving to one of those fields.
	var out []Finding
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || compliant[sel] {
					return true
				}
				f := fieldOfSelector(pkg.Info, sel)
				if f == nil {
					return true
				}
				site, shared := atomicFields[f]
				if !shared {
					return true
				}
				out = append(out, finding(a.Name(), pkg.Position(sel.Pos()),
					"field %s is accessed via sync/atomic at %s:%d but plainly here: every access must go through sync/atomic",
					fieldLabel(f), site.Filename, site.Line))
				return true
			})
		}
	}
	return out
}

// isSyncAtomicCall reports whether call invokes a sync/atomic package
// function.
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeOf(info, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic"
}

// fieldLabel renders a field as Type.name for diagnostics.
func fieldLabel(f *types.Var) string {
	if f.Pkg() != nil {
		return fmt.Sprintf("%s.%s", f.Pkg().Name(), f.Name())
	}
	return f.Name()
}
