package eventsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if FromDuration(time.Microsecond) != Microsecond {
		t.Errorf("FromDuration(1us) = %d", FromDuration(time.Microsecond))
	}
	if d := (3 * Millisecond).Duration(); d != 3*time.Millisecond {
		t.Errorf("Duration() = %v", d)
	}
	if s := Second.Seconds(); s != 1.0 {
		t.Errorf("Seconds() = %v", s)
	}
	if us := (2500 * Nanosecond).Micros(); us != 2.5 {
		t.Errorf("Micros() = %v", us)
	}
	if got := FromSeconds(0.5); got != 500*Millisecond {
		t.Errorf("FromSeconds(0.5) = %v", got)
	}
	if (1500 * Nanosecond).String() != "1.500us" {
		t.Errorf("String() = %q", (1500 * Nanosecond).String())
	}
}

func TestSimRunsEventsInTimeOrder(t *testing.T) {
	s := New()
	var got []int
	s.At(30*Nanosecond, func() { got = append(got, 3) })
	s.At(10*Nanosecond, func() { got = append(got, 1) })
	s.At(20*Nanosecond, func() { got = append(got, 2) })
	n := s.RunAll()
	if n != 3 {
		t.Fatalf("processed %d events, want 3", n)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("order %v", got)
		}
	}
}

func TestSimFIFOAtEqualTimes(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5*Microsecond, func() { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("equal-time events not FIFO: pos %d got %d", i, v)
		}
	}
}

func TestSimAfterAndNow(t *testing.T) {
	s := New()
	var at Time
	s.After(7*Microsecond, func() {
		at = s.Now()
		s.After(3*Microsecond, func() { at = s.Now() })
	})
	s.RunAll()
	if at != 10*Microsecond {
		t.Errorf("nested After landed at %v", at)
	}
}

func TestSimPastSchedulingClampsToNow(t *testing.T) {
	s := New()
	ran := false
	s.At(10*Microsecond, func() {
		s.At(5*Microsecond, func() { // in the past
			ran = true
			if s.Now() != 10*Microsecond {
				t.Errorf("past event ran at %v", s.Now())
			}
		})
	})
	s.RunAll()
	if !ran {
		t.Error("past-scheduled event never ran")
	}
}

func TestSimRunHorizonStopsAndAdvancesClock(t *testing.T) {
	s := New()
	ran := 0
	s.At(5*Microsecond, func() { ran++ })
	s.At(50*Microsecond, func() { ran++ })
	s.Run(10 * Microsecond)
	if ran != 1 {
		t.Fatalf("ran %d events before horizon, want 1", ran)
	}
	if s.Now() != 10*Microsecond {
		t.Errorf("clock at %v after horizon run", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending %d", s.Pending())
	}
	s.RunAll()
	if ran != 2 {
		t.Errorf("second event never ran")
	}
}

func TestSimStop(t *testing.T) {
	s := New()
	ran := 0
	s.At(1, func() { ran++; s.Stop() })
	s.At(2, func() { ran++ })
	s.RunAll()
	if ran != 1 {
		t.Errorf("Stop did not halt the loop: ran %d", ran)
	}
}

func TestSimNilAndNegative(t *testing.T) {
	s := New()
	s.At(5, nil) // must not panic or enqueue
	if s.Pending() != 0 {
		t.Error("nil event enqueued")
	}
	ran := false
	s.After(-5, func() { ran = true })
	s.RunAll()
	if !ran {
		t.Error("negative delay event never ran")
	}
}

func TestSimDeterminism(t *testing.T) {
	// Two identical simulations must produce identical traces.
	run := func() []Time {
		s := New()
		var trace []Time
		var rec func(depth int)
		seed := Time(1)
		rec = func(depth int) {
			trace = append(trace, s.Now())
			if depth > 6 {
				return
			}
			seed = seed*1103515245 + 12345
			d := seed % 97
			if d < 0 {
				d = -d
			}
			s.After(d, func() { rec(depth + 1) })
			s.After(d/2, func() { rec(depth + 1) })
		}
		s.After(0, func() { rec(0) })
		s.RunAll()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCoreExecSerializes(t *testing.T) {
	s := New()
	c := NewCore(s, 0, 0, 1e9) // 1 GHz: 1 cycle = 1 ns
	var done []Time
	s.After(0, func() {
		c.Exec(100, func() { done = append(done, s.Now()) })
		c.Exec(50, func() { done = append(done, s.Now()) })
	})
	s.RunAll()
	if len(done) != 2 {
		t.Fatalf("completions: %d", len(done))
	}
	if done[0] != 100*Nanosecond || done[1] != 150*Nanosecond {
		t.Errorf("serialized completions at %v", done)
	}
	if c.Utilization(150*Nanosecond) != 1.0 {
		t.Errorf("utilization %v", c.Utilization(150*Nanosecond))
	}
}

func TestCoreCycleTimeRoundTrip(t *testing.T) {
	s := New()
	c := NewCore(s, 3, 1, 2.1e9)
	if c.ID() != 3 || c.Node() != 1 || c.Hz() != 2.1e9 {
		t.Errorf("core identity: %v", c)
	}
	err := quick.Check(func(n uint16) bool {
		cycles := float64(n)
		back := c.Cycles(c.CycleTime(cycles))
		return back >= cycles-1 && back <= cycles+1
	}, nil)
	if err != nil {
		t.Error(err)
	}
	if c.CycleTime(-5) != 0 {
		t.Error("negative cycles should cost zero time")
	}
}

func TestPollLoopIdleChargesAndCommitOrder(t *testing.T) {
	s := New()
	c := NewCore(s, 0, 0, 1e9)
	iterations := 0
	commits := 0
	var loop *PollLoop
	loop = NewPollLoop(s, c, 10, func() (float64, func()) {
		iterations++
		if iterations == 5 {
			return 100, func() {
				commits++
				// 4 idle iterations at 10 cycles + 100 busy cycles @1GHz.
				if s.Now() != Time(4*10+100)*Nanosecond {
					t.Errorf("commit at %v", s.Now())
				}
				loop.Stop()
			}
		}
		return 0, nil // idle
	})
	loop.Start()
	s.RunAll()
	if commits != 1 {
		t.Errorf("commits = %d", commits)
	}
	if loop.Iterations() != 5 {
		t.Errorf("iterations = %d", loop.Iterations())
	}
}

func TestPollLoopStop(t *testing.T) {
	s := New()
	c := NewCore(s, 0, 0, 1e9)
	n := 0
	var loop *PollLoop
	loop = NewPollLoop(s, c, 10, func() (float64, func()) {
		n++
		if n == 3 {
			loop.Stop()
		}
		return 10, nil
	})
	loop.Start()
	s.RunAll()
	if n != 3 {
		t.Errorf("loop ran %d iterations after Stop", n)
	}
}

func TestPostRunsAtNextSafePoint(t *testing.T) {
	s := New()
	var order []string
	s.At(10, func() { order = append(order, "ev10") })
	s.At(30, func() { order = append(order, "ev30") })
	s.Post(func() { order = append(order, "post-before") })
	if !s.PostedPending() {
		t.Error("PostedPending false with work queued")
	}
	s.Run(20)
	// The entry drain runs the post before any event.
	want := []string{"post-before", "ev10"}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if s.PostedPending() {
		t.Error("PostedPending true after drain")
	}
	// A post from inside an event runs before the next event executes.
	s.At(40, func() {
		s.Post(func() { order = append(order, "post-mid") })
		order = append(order, "ev40")
	})
	s.Run(50)
	if got := order[len(order)-3:]; got[0] != "ev30" || got[1] != "ev40" || got[2] != "post-mid" {
		t.Fatalf("tail order = %v", got)
	}
}

func TestPostFromAnotherGoroutine(t *testing.T) {
	s := New()
	// A self-perpetuating timer keeps the queue non-empty, mirroring the
	// transfer layer's poll loops.
	var ticks int
	var tick func()
	tick = func() {
		ticks++
		s.After(Microsecond, tick)
	}
	s.After(0, tick)

	done := make(chan int, 1)
	go func() {
		got := make(chan int, 1)
		s.Post(func() { got <- ticks })
		done <- <-got
	}()
	// Pump until the posted op has executed and replied.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.Run(s.Now() + 10*Microsecond)
		select {
		case seen := <-done:
			if seen == 0 {
				t.Fatal("posted op observed zero ticks")
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("posted op never ran while pumping")
		}
	}
}

func TestPostNilIgnored(t *testing.T) {
	s := New()
	s.Post(nil)
	if s.PostedPending() {
		t.Error("nil post marked pending")
	}
	s.Run(10)
}
