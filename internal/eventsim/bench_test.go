package eventsim

import "testing"

// BenchmarkEventLoop measures raw simulator event throughput, the wall-
// clock cost driver of every experiment.
func BenchmarkEventLoop(b *testing.B) {
	s := New()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(Nanosecond, tick)
		}
	}
	b.ResetTimer()
	s.After(0, tick)
	s.RunAll()
}

// BenchmarkPollLoop measures the poll-loop actor overhead.
func BenchmarkPollLoop(b *testing.B) {
	s := New()
	c := NewCore(s, 0, 0, 2.1e9)
	n := 0
	var loop *PollLoop
	loop = NewPollLoop(s, c, 60, func() (float64, func()) {
		n++
		if n >= b.N {
			loop.Stop()
		}
		return 100, nil
	})
	b.ResetTimer()
	loop.Start()
	s.RunAll()
}
