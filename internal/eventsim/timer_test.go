package eventsim

import "testing"

func TestTimerFiresOnce(t *testing.T) {
	sim := New()
	fired := 0
	tm := sim.NewTimer(func() { fired++ })
	if tm.Armed() || tm.When() != 0 {
		t.Error("new timer should be stopped")
	}
	tm.Reset(10 * Microsecond)
	if !tm.Armed() || tm.When() != 10*Microsecond {
		t.Errorf("armed=%v when=%v", tm.Armed(), tm.When())
	}
	sim.RunAll()
	if fired != 1 {
		t.Errorf("fired %d times", fired)
	}
	if tm.Armed() {
		t.Error("timer still armed after firing")
	}
}

func TestTimerStop(t *testing.T) {
	sim := New()
	fired := 0
	tm := sim.NewTimer(func() { fired++ })
	tm.Reset(10 * Microsecond)
	tm.Stop()
	sim.RunAll()
	if fired != 0 {
		t.Error("stopped timer fired")
	}
}

func TestTimerResetLater(t *testing.T) {
	sim := New()
	var firedAt Time
	tm := sim.NewTimer(func() { firedAt = sim.Now() })
	tm.Reset(10 * Microsecond)
	tm.Reset(25 * Microsecond) // push the deadline out
	sim.RunAll()
	if firedAt != 25*Microsecond {
		t.Errorf("fired at %v, want 25us", firedAt)
	}
}

func TestTimerResetEarlier(t *testing.T) {
	sim := New()
	var firedAt Time
	fired := 0
	tm := sim.NewTimer(func() { fired++; firedAt = sim.Now() })
	tm.Reset(25 * Microsecond)
	tm.Reset(10 * Microsecond) // pull the deadline in
	sim.RunAll()
	if fired != 1 || firedAt != 10*Microsecond {
		t.Errorf("fired %d times at %v, want once at 10us", fired, firedAt)
	}
}

func TestTimerRearmFromCallback(t *testing.T) {
	sim := New()
	var fires []Time
	var tm *Timer
	tm = sim.NewTimer(func() {
		fires = append(fires, sim.Now())
		if len(fires) < 3 {
			tm.Reset(5 * Microsecond)
		}
	})
	tm.Reset(5 * Microsecond)
	sim.RunAll()
	want := []Time{5 * Microsecond, 10 * Microsecond, 15 * Microsecond}
	if len(fires) != len(want) {
		t.Fatalf("fires %v", fires)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Errorf("fire %d at %v, want %v", i, fires[i], want[i])
		}
	}
}

func TestTimerReuseAfterStop(t *testing.T) {
	sim := New()
	fired := 0
	tm := sim.NewTimer(func() { fired++ })
	tm.Reset(5 * Microsecond)
	tm.Stop()
	tm.Reset(8 * Microsecond)
	sim.RunAll()
	if fired != 1 {
		t.Errorf("fired %d times after stop+reset", fired)
	}
}

func TestTimerNegativeDelayFiresNow(t *testing.T) {
	sim := New()
	sim.Run(3 * Microsecond)
	var firedAt Time
	tm := sim.NewTimer(func() { firedAt = sim.Now() })
	tm.Reset(-5)
	sim.RunAll()
	if firedAt != 3*Microsecond {
		t.Errorf("fired at %v, want now (3us)", firedAt)
	}
}
