package eventsim

import "fmt"

// Core models one simulated CPU hardware thread.
//
// Work is accounted in cycles at the core's clock frequency. A core is a
// serial resource: tasks queued on it execute back-to-back, mirroring a
// DPDK-style run-to-completion poll-mode core.
type Core struct {
	sim    *Sim
	id     int
	node   int // NUMA node
	hz     float64
	freeAt Time

	busy Time // total busy time, for utilization accounting
}

// NewCore creates a simulated core on NUMA node "node" clocked at hz Hz.
func NewCore(sim *Sim, id, node int, hz float64) *Core {
	return &Core{sim: sim, id: id, node: node, hz: hz}
}

// ID reports the core's identifier.
func (c *Core) ID() int { return c.id }

// Node reports the core's NUMA node.
func (c *Core) Node() int { return c.node }

// Hz reports the core's clock frequency.
func (c *Core) Hz() float64 { return c.hz }

// CycleTime converts a cycle count into virtual time at this core's clock.
func (c *Core) CycleTime(cycles float64) Time {
	if cycles <= 0 {
		return 0
	}
	return Time(cycles * 1e12 / c.hz)
}

// Cycles converts a virtual-time span into cycles at this core's clock.
func (c *Core) Cycles(d Time) float64 {
	return float64(d) * c.hz / 1e12
}

// FreeAt reports when the core finishes all currently queued work.
func (c *Core) FreeAt() Time { return c.freeAt }

// Utilization reports the fraction of [0, horizon] this core spent busy.
func (c *Core) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(c.busy) / float64(horizon)
}

// Exec occupies the core for "cycles" cycles starting no earlier than now,
// then invokes done (which may be nil). It returns the completion time.
func (c *Core) Exec(cycles float64, done func()) Time {
	start := c.sim.Now()
	if c.freeAt > start {
		start = c.freeAt
	}
	d := c.CycleTime(cycles)
	c.freeAt = start + d
	c.busy += d
	if done != nil {
		c.sim.At(c.freeAt, done)
	}
	return c.freeAt
}

// String identifies the core for diagnostics.
func (c *Core) String() string {
	return fmt.Sprintf("core%d(node%d @%.2fGHz)", c.id, c.node, c.hz/1e9)
}

// PollBody is one poll-loop iteration. It returns the cycles the iteration
// consumed and an optional commit callback that runs when the core has
// actually spent those cycles — downstream hand-offs (ring enqueues, NIC
// TX, DMA posts) belong in commit so that pipeline latency includes the
// stage's processing time. Inputs may be consumed at iteration start
// (matching when rx_burst/ring dequeue returns).
type PollBody func() (cycles float64, commit func())

// PollLoop runs a poll-mode body on a core forever (until the simulation
// horizon). If the body reports 0 cycles the loop charges idleCycles
// instead, modelling the cost of a wasted poll. This mirrors a DPDK
// while(1) { rx_burst(); ... } core.
type PollLoop struct {
	sim        *Sim
	core       *Core
	body       PollBody
	idleCycles float64
	stopped    bool
	iterations uint64

	// step and pendingCommit are bound once at construction so iterate —
	// which runs once per poll on every transfer core — schedules the next
	// turn without materializing a fresh closure each iteration.
	step          func()
	pendingCommit func()
}

// NewPollLoop creates (but does not start) a poll loop on core.
func NewPollLoop(sim *Sim, core *Core, idleCycles float64, body PollBody) *PollLoop {
	p := &PollLoop{sim: sim, core: core, body: body, idleCycles: idleCycles}
	p.step = p.finish
	return p
}

// Start schedules the first iteration at the current time.
func (p *PollLoop) Start() {
	p.sim.After(0, p.iterate)
}

// Stop halts the loop after the current iteration.
func (p *PollLoop) Stop() { p.stopped = true }

// Iterations reports how many poll iterations have run.
func (p *PollLoop) Iterations() uint64 { return p.iterations }

//dhl:hotpath
func (p *PollLoop) iterate() {
	if p.stopped {
		return
	}
	p.iterations++
	cycles, commit := p.body()
	if cycles <= 0 {
		cycles = p.idleCycles
	}
	p.pendingCommit = commit
	p.core.Exec(cycles, p.step)
}

// finish runs the iteration's commit callback (after the core has spent
// its cycles) and schedules the next poll.
func (p *PollLoop) finish() {
	if c := p.pendingCommit; c != nil {
		p.pendingCommit = nil
		c()
	}
	p.iterate()
}
