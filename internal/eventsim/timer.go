package eventsim

// Timer is a reusable, cancellable one-shot deadline on the simulation
// clock, built for the transfer layer's batch watchdog.
//
// The event heap has no removal operation (events are pooled and popped
// in order), so Stop and Reset work by validation at fire time: each
// scheduled event checks whether the timer is still armed for a deadline
// that has arrived before invoking the callback. Stale events from a
// stopped or re-armed timer fire as cheap no-ops. After construction the
// timer is allocation-free: events come from the sim's pool and the fire
// thunk is bound once.
type Timer struct {
	sim    *Sim
	fn     func()
	at     Time // armed deadline, valid while armed
	armed  bool
	fireFn func()
}

// NewTimer creates a stopped timer that invokes fn when it fires.
func (s *Sim) NewTimer(fn func()) *Timer {
	t := &Timer{sim: s, fn: fn}
	t.fireFn = t.fire
	return t
}

// Armed reports whether the timer has a pending deadline.
func (t *Timer) Armed() bool { return t.armed }

// When returns the armed deadline, or zero when stopped.
func (t *Timer) When() Time {
	if !t.armed {
		return 0
	}
	return t.at
}

// Reset arms the timer to fire d from now, replacing any earlier
// deadline. Resetting an armed timer is cheap but not free — it books
// one pooled event per call — so periodic users should re-arm from the
// callback rather than on every observation.
func (t *Timer) Reset(d Time) {
	if d < 0 {
		d = 0
	}
	t.at = t.sim.Now() + d
	t.armed = true
	t.sim.At(t.at, t.fireFn)
}

// Stop disarms the timer. A deadline that already passed but whose
// callback has not yet run no longer fires.
func (t *Timer) Stop() { t.armed = false }

func (t *Timer) fire() {
	// A stale event: the timer was stopped, or was re-armed for a later
	// deadline (whose own event will arrive in due course).
	if !t.armed || t.sim.Now() < t.at {
		return
	}
	t.armed = false
	t.fn()
}
