// Package eventsim provides a deterministic discrete-event simulator used as
// the time authority for the DHL testbed reproduction.
//
// The simulator models virtual time as int64 picoseconds so that CPU cycles
// at non-integral-nanosecond frequencies (e.g. 2.1 GHz -> 476.19 ps/cycle)
// accumulate with negligible rounding error. All hardware and software
// components in the reproduction are actors on a single event loop, which
// makes every experiment bit-for-bit reproducible.
package eventsim

import (
	"container/heap"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Time is a virtual timestamp in picoseconds since simulation start.
type Time int64

// Common durations expressed in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// FromDuration converts a time.Duration into simulator Time.
func FromDuration(d time.Duration) Time {
	return Time(d.Nanoseconds()) * Nanosecond
}

// Duration converts a simulator Time span back into a time.Duration,
// truncating to nanosecond resolution.
func (t Time) Duration() time.Duration {
	return time.Duration(int64(t)/int64(Nanosecond)) * time.Nanosecond
}

// Seconds reports the time span in floating-point seconds.
func (t Time) Seconds() float64 {
	return float64(t) / float64(Second)
}

// Micros reports the time span in floating-point microseconds.
func (t Time) Micros() float64 {
	return float64(t) / float64(Microsecond)
}

// String renders the timestamp at microsecond granularity for diagnostics.
func (t Time) String() string {
	return fmt.Sprintf("%.3fus", t.Micros())
}

// FromSeconds converts floating-point seconds into simulator Time.
func FromSeconds(s float64) Time {
	if math.IsInf(s, 1) || s > float64(math.MaxInt64)/float64(Second) {
		return Time(math.MaxInt64)
	}
	return Time(s * float64(Second))
}

// event is a single scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker for deterministic FIFO ordering at equal times
	fn  func()
}

// eventHeap orders events by (time, insertion sequence).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Sim is a single-threaded discrete-event simulation.
//
// Sim is not safe for concurrent use: all actors run on the event loop
// goroutine, which is exactly what makes runs deterministic. The one
// exception is Post, the external mailbox: any goroutine may Post a
// function, and the driving goroutine executes it at the next safe point
// inside Run. That is how the control plane injects management
// operations into a live system without locking against the data path.
type Sim struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	nEvents uint64

	// evFree recycles event objects so steady-state scheduling does not
	// heap-allocate: the poll loops and DMA engines schedule one event per
	// iteration/transfer, which would otherwise dominate the data path's
	// allocation profile.
	evFree []*event

	// External mailbox (Post). postPending lets Run's inner loop check for
	// posted work with a single atomic load per event, so the data path
	// never takes the mutex unless someone actually posted.
	postMu      sync.Mutex
	posted      []func()
	postScratch []func()
	postPending atomic.Bool
}

// New creates an empty simulation with the clock at zero.
func New() *Sim {
	return &Sim{}
}

// Now reports the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Processed reports the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.nEvents }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to "now": the event runs before any later-scheduled work.
//
//dhl:hotpath
func (s *Sim) At(t Time, fn func()) {
	if fn == nil {
		return
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	var ev *event
	if n := len(s.evFree); n > 0 {
		ev = s.evFree[n-1]
		s.evFree[n-1] = nil
		s.evFree = s.evFree[:n-1]
		ev.at, ev.seq, ev.fn = t, s.seq, fn
	} else {
		ev = newEvent(t, s.seq, fn)
	}
	heap.Push(&s.events, ev)
}

// newEvent is the cold freelist-miss constructor; //go:noinline keeps its
// allocation out of At's //dhl:hotpath body under escape analysis.
//
//go:noinline
func newEvent(at Time, seq uint64, fn func()) *event {
	return &event{at: at, seq: seq, fn: fn}
}

// After schedules fn to run d picoseconds from now.
func (s *Sim) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (s *Sim) Stop() { s.stopped = true }

// Post schedules fn to run on the event-loop goroutine at the next safe
// point inside Run: before the next event executes, at the current
// virtual time. Unlike every other Sim method, Post is safe to call from
// any goroutine — it is the bridge by which external actors (the control
// plane's HTTP handlers, operator CLIs) inject work into a live
// simulation. Posted functions run in post order, may themselves
// schedule events, and must not block. If nothing is driving Run, the
// function waits for the next Run call; callers that need a reply should
// wait with a real-time timeout.
func (s *Sim) Post(fn func()) {
	if fn == nil {
		return
	}
	s.postMu.Lock()
	s.posted = append(s.posted, fn)
	s.postMu.Unlock()
	s.postPending.Store(true)
}

// PostedPending reports whether external work is waiting for the next
// Run safe point. Safe from any goroutine.
func (s *Sim) PostedPending() bool { return s.postPending.Load() }

// drainPosted runs every function waiting in the external mailbox. Only
// the event-loop goroutine calls it (from Run), so posted functions see
// the same single-threaded world as any scheduled event. The swap keeps
// the mutex window to a slice exchange; functions posted while draining
// are picked up by the next check.
func (s *Sim) drainPosted() {
	s.postMu.Lock()
	batch := s.posted
	s.posted = s.postScratch[:0]
	s.postPending.Store(false)
	s.postMu.Unlock()
	for i, fn := range batch {
		batch[i] = nil
		fn()
	}
	s.postScratch = batch
}

// Run executes events in timestamp order until the queue is empty or the
// clock would pass "until". It returns the number of events processed.
//
// Between events (and once on entry) Run drains the external mailbox, so
// functions handed to Post from other goroutines execute here, on the
// driving goroutine, serialized against the actors.
func (s *Sim) Run(until Time) uint64 {
	s.stopped = false
	var n uint64
	if s.postPending.Load() {
		s.drainPosted()
	}
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if next.at > until {
			break
		}
		ev, ok := heap.Pop(&s.events).(*event)
		if !ok {
			break
		}
		s.now = ev.at
		fn := ev.fn
		// Recycle before running fn: the event is off the heap and fn may
		// schedule new work, which then reuses the hottest object first.
		ev.fn = nil
		s.evFree = append(s.evFree, ev)
		fn()
		n++
		s.nEvents++
		if s.postPending.Load() {
			s.drainPosted()
		}
	}
	// Advance the clock to the horizon even if the queue drained early so
	// that rate computations over [0, until] are well-defined.
	if !s.stopped && s.now < until && until != Time(math.MaxInt64) {
		s.now = until
	}
	return n
}

// RunAll executes events until the queue is empty.
func (s *Sim) RunAll() uint64 {
	return s.Run(Time(math.MaxInt64))
}

// Pending reports the number of scheduled-but-unexecuted events.
func (s *Sim) Pending() int { return len(s.events) }
