package eth

import (
	"bytes"
	"testing"
	"testing/quick"
)

func buildFrame(t *testing.T, cfg BuildConfig) []byte {
	t.Helper()
	buf := make([]byte, 2048)
	n, err := Build(buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

func defaultCfg() BuildConfig {
	return BuildConfig{
		SrcMAC:  MAC{0x02, 0, 0, 0, 0, 1},
		DstMAC:  MAC{0x02, 0, 0, 0, 0, 2},
		SrcIP:   IPv4{10, 1, 2, 3},
		DstIP:   IPv4{192, 168, 4, 5},
		SrcPort: 1234,
		DstPort: 80,
		Proto:   ProtoUDP,
		Payload: []byte("payload-bytes"),
	}
}

func TestBuildParseRoundTrip(t *testing.T) {
	cfg := defaultCfg()
	raw := buildFrame(t, cfg)
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.SrcMAC() != cfg.SrcMAC || f.DstMAC() != cfg.DstMAC {
		t.Errorf("MACs: %v %v", f.SrcMAC(), f.DstMAC())
	}
	if f.SrcIP() != cfg.SrcIP || f.DstIP() != cfg.DstIP {
		t.Errorf("IPs: %v %v", f.SrcIP(), f.DstIP())
	}
	if f.SrcPort() != 1234 || f.DstPort() != 80 {
		t.Errorf("ports: %d %d", f.SrcPort(), f.DstPort())
	}
	if f.Proto() != ProtoUDP {
		t.Errorf("proto %d", f.Proto())
	}
	if !bytes.Equal(f.Payload(), cfg.Payload) {
		t.Errorf("payload %q", f.Payload())
	}
	if f.TotalLen() != len(raw)-EtherLen {
		t.Errorf("total len %d vs frame %d", f.TotalLen(), len(raw))
	}
	if f.EtherType() != EtherTypeIPv4 {
		t.Errorf("ethertype %#x", f.EtherType())
	}
}

func TestBuildTCP(t *testing.T) {
	cfg := defaultCfg()
	cfg.Proto = ProtoTCP
	raw := buildFrame(t, cfg)
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Proto() != ProtoTCP {
		t.Errorf("proto %d", f.Proto())
	}
	if !bytes.Equal(f.Payload(), cfg.Payload) {
		t.Errorf("tcp payload %q", f.Payload())
	}
	if f.SrcPort() != 1234 || f.DstPort() != 80 {
		t.Errorf("tcp ports %d %d", f.SrcPort(), f.DstPort())
	}
}

func TestChecksumValidAndUpdates(t *testing.T) {
	raw := buildFrame(t, defaultCfg())
	f, _ := Parse(raw)
	if got, want := f.IPChecksum(), f.ComputeIPChecksum(); got != want {
		t.Errorf("built checksum %#x, recomputed %#x", got, want)
	}
	before := f.IPChecksum()
	f.SetDstIP(IPv4{1, 2, 3, 4})
	if f.ComputeIPChecksum() == before {
		t.Error("checksum unchanged after header mutation")
	}
}

func TestDecTTL(t *testing.T) {
	raw := buildFrame(t, defaultCfg())
	f, _ := Parse(raw)
	ttl := f.TTL()
	f.DecTTL()
	if f.TTL() != ttl-1 {
		t.Errorf("TTL %d after DecTTL from %d", f.TTL(), ttl)
	}
	if f.IPChecksum() != f.ComputeIPChecksum() {
		t.Error("checksum stale after DecTTL")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(make([]byte, 10)); err == nil {
		t.Error("short frame accepted")
	}
	raw := buildFrame(t, defaultCfg())
	raw[12], raw[13] = 0x86, 0xDD // IPv6 ethertype
	if _, err := Parse(raw); err != ErrNotIPv4 {
		t.Errorf("non-IPv4: %v", err)
	}
}

func TestBuildBufferTooSmall(t *testing.T) {
	if _, err := Build(make([]byte, 16), defaultCfg()); err == nil {
		t.Error("tiny buffer accepted")
	}
}

func TestTuple(t *testing.T) {
	raw := buildFrame(t, defaultCfg())
	f, _ := Parse(raw)
	tup := f.Tuple()
	want := FiveTuple{Src: IPv4{10, 1, 2, 3}, Dst: IPv4{192, 168, 4, 5}, SrcPort: 1234, DstPort: 80, Proto: ProtoUDP}
	if tup != want {
		t.Errorf("tuple %v", tup)
	}
	if tup.String() == "" {
		t.Error("empty tuple string")
	}
}

func TestIPv4Uint32RoundTrip(t *testing.T) {
	err := quick.Check(func(v uint32) bool {
		return IPv4FromUint32(v).Uint32() == v
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMACAndIPStrings(t *testing.T) {
	if s := (MAC{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}).String(); s != "de:ad:be:ef:00:01" {
		t.Errorf("mac string %q", s)
	}
	if s := (IPv4{10, 0, 0, 1}).String(); s != "10.0.0.1" {
		t.Errorf("ip string %q", s)
	}
}

// TestQuickBuildParse round-trips arbitrary payloads and addresses.
func TestQuickBuildParse(t *testing.T) {
	f := func(src, dst [4]byte, sport, dport uint16, tcp bool, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		cfg := BuildConfig{
			SrcIP: IPv4(src), DstIP: IPv4(dst),
			SrcPort: sport, DstPort: dport,
			Proto:   ProtoUDP,
			Payload: payload,
		}
		if tcp {
			cfg.Proto = ProtoTCP
		}
		buf := make([]byte, 2048)
		n, err := Build(buf, cfg)
		if err != nil {
			return false
		}
		fr, err := Parse(buf[:n])
		if err != nil {
			return false
		}
		return fr.SrcIP() == cfg.SrcIP &&
			fr.DstIP() == cfg.DstIP &&
			fr.SrcPort() == sport &&
			fr.DstPort() == dport &&
			bytes.Equal(fr.Payload(), payload) &&
			fr.IPChecksum() == fr.ComputeIPChecksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
