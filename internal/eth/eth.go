// Package eth crafts and parses the Ethernet/IPv4/UDP/TCP headers that the
// reproduced network functions operate on. It implements just enough of the
// wire formats for the DHL workloads: L2 forwarding (MAC rewrite), L3
// longest-prefix-match forwarding, IPsec ESP tunneling, and NIDS payload
// inspection.
package eth

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Header sizes and protocol numbers.
const (
	EtherLen = 14
	IPv4Len  = 20
	UDPLen   = 8
	TCPLen   = 20

	// EtherTypeIPv4 is the EtherType for IPv4.
	EtherTypeIPv4 = 0x0800

	// ProtoTCP, ProtoUDP and ProtoESP are IPv4 protocol numbers.
	ProtoTCP = 6
	ProtoUDP = 17
	ProtoESP = 50

	// WireOverhead is the per-frame preamble+SFD+IFG+FCS overhead (20+4
	// bytes) used when converting packet sizes to line-rate occupancy; the
	// paper's "64B at 10G = 14.88 Mpps" arithmetic depends on it.
	WireOverhead = 24
)

// Errors returned by the parsers.
var (
	ErrTruncated = errors.New("eth: truncated packet")
	ErrNotIPv4   = errors.New("eth: not an IPv4 packet")
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders the MAC in colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IPv4 is an IPv4 address in host-independent byte order.
type IPv4 [4]byte

// String renders the address in dotted-quad form.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// Uint32 returns the address as a big-endian integer (for LPM lookups).
func (ip IPv4) Uint32() uint32 { return binary.BigEndian.Uint32(ip[:]) }

// IPv4FromUint32 converts a big-endian integer into an address.
func IPv4FromUint32(v uint32) IPv4 {
	var ip IPv4
	binary.BigEndian.PutUint32(ip[:], v)
	return ip
}

// FiveTuple identifies a flow; IPsec SA matching and NIDS rules key on it.
type FiveTuple struct {
	Src     IPv4
	Dst     IPv4
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// String renders the tuple for diagnostics.
func (t FiveTuple) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%d", t.Src, t.SrcPort, t.Dst, t.DstPort, t.Proto)
}

// Frame is a decoded view over a raw packet. Header fields alias the
// underlying buffer, so mutations write through.
type Frame struct {
	raw []byte
}

// Parse wraps a raw Ethernet frame, validating minimum lengths for an
// Ethernet+IPv4+L4 packet.
func Parse(raw []byte) (Frame, error) {
	if len(raw) < EtherLen+IPv4Len {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrTruncated, len(raw))
	}
	f := Frame{raw: raw}
	if f.EtherType() != EtherTypeIPv4 {
		return Frame{}, ErrNotIPv4
	}
	if ihl := f.ipHeaderLen(); len(raw) < EtherLen+ihl {
		return Frame{}, fmt.Errorf("%w: IHL %d", ErrTruncated, ihl)
	}
	return f, nil
}

// Raw returns the underlying buffer.
func (f Frame) Raw() []byte { return f.raw }

// DstMAC returns the destination MAC address.
func (f Frame) DstMAC() MAC { var m MAC; copy(m[:], f.raw[0:6]); return m }

// SrcMAC returns the source MAC address.
func (f Frame) SrcMAC() MAC { var m MAC; copy(m[:], f.raw[6:12]); return m }

// SetDstMAC rewrites the destination MAC (L2fwd's per-packet work).
func (f Frame) SetDstMAC(m MAC) { copy(f.raw[0:6], m[:]) }

// SetSrcMAC rewrites the source MAC.
func (f Frame) SetSrcMAC(m MAC) { copy(f.raw[6:12], m[:]) }

// EtherType returns the frame's EtherType.
func (f Frame) EtherType() uint16 { return binary.BigEndian.Uint16(f.raw[12:14]) }

func (f Frame) ipHeaderLen() int { return int(f.raw[EtherLen]&0x0f) * 4 }

// Proto returns the IPv4 protocol number.
func (f Frame) Proto() uint8 { return f.raw[EtherLen+9] }

// TTL returns the IPv4 time-to-live.
func (f Frame) TTL() uint8 { return f.raw[EtherLen+8] }

// DecTTL decrements TTL and incrementally updates the header checksum,
// the way an L3 forwarder does.
func (f Frame) DecTTL() {
	f.raw[EtherLen+8]--
	// RFC 1141 incremental checksum update for a -1 on the TTL byte.
	f.SetIPChecksum(0)
	f.SetIPChecksum(f.ComputeIPChecksum())
}

// SrcIP returns the IPv4 source address.
func (f Frame) SrcIP() IPv4 { var ip IPv4; copy(ip[:], f.raw[EtherLen+12:EtherLen+16]); return ip }

// DstIP returns the IPv4 destination address.
func (f Frame) DstIP() IPv4 { var ip IPv4; copy(ip[:], f.raw[EtherLen+16:EtherLen+20]); return ip }

// SetSrcIP rewrites the source address (NAT-style).
func (f Frame) SetSrcIP(ip IPv4) { copy(f.raw[EtherLen+12:EtherLen+16], ip[:]) }

// SetDstIP rewrites the destination address.
func (f Frame) SetDstIP(ip IPv4) { copy(f.raw[EtherLen+16:EtherLen+20], ip[:]) }

// TotalLen returns the IPv4 total length field.
func (f Frame) TotalLen() int { return int(binary.BigEndian.Uint16(f.raw[EtherLen+2 : EtherLen+4])) }

// IPChecksum returns the stored IPv4 header checksum.
func (f Frame) IPChecksum() uint16 {
	return binary.BigEndian.Uint16(f.raw[EtherLen+10 : EtherLen+12])
}

// SetIPChecksum stores a header checksum value.
func (f Frame) SetIPChecksum(sum uint16) {
	binary.BigEndian.PutUint16(f.raw[EtherLen+10:EtherLen+12], sum)
}

// ComputeIPChecksum computes the IPv4 header checksum over the current
// header with the checksum field treated as zero.
func (f Frame) ComputeIPChecksum() uint16 {
	ihl := f.ipHeaderLen()
	var sum uint32
	for i := 0; i < ihl; i += 2 {
		if i == 10 { // skip the checksum field itself
			continue
		}
		sum += uint32(binary.BigEndian.Uint16(f.raw[EtherLen+i : EtherLen+i+2]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// L4 returns the transport header+payload bytes.
func (f Frame) L4() []byte { return f.raw[EtherLen+f.ipHeaderLen():] }

// SrcPort returns the L4 source port (TCP/UDP), or 0 when absent.
func (f Frame) SrcPort() uint16 {
	l4 := f.L4()
	if len(l4) < 4 || (f.Proto() != ProtoTCP && f.Proto() != ProtoUDP) {
		return 0
	}
	return binary.BigEndian.Uint16(l4[0:2])
}

// DstPort returns the L4 destination port (TCP/UDP), or 0 when absent.
func (f Frame) DstPort() uint16 {
	l4 := f.L4()
	if len(l4) < 4 || (f.Proto() != ProtoTCP && f.Proto() != ProtoUDP) {
		return 0
	}
	return binary.BigEndian.Uint16(l4[2:4])
}

// Payload returns the application payload (after the L4 header).
func (f Frame) Payload() []byte {
	l4 := f.L4()
	switch f.Proto() {
	case ProtoUDP:
		if len(l4) < UDPLen {
			return nil
		}
		return l4[UDPLen:]
	case ProtoTCP:
		if len(l4) < TCPLen {
			return nil
		}
		off := int(l4[12]>>4) * 4
		if off < TCPLen || len(l4) < off {
			return nil
		}
		return l4[off:]
	default:
		return l4
	}
}

// Tuple extracts the flow 5-tuple.
func (f Frame) Tuple() FiveTuple {
	return FiveTuple{
		Src:     f.SrcIP(),
		Dst:     f.DstIP(),
		SrcPort: f.SrcPort(),
		DstPort: f.DstPort(),
		Proto:   f.Proto(),
	}
}

// BuildConfig parameterizes Build.
type BuildConfig struct {
	SrcMAC, DstMAC   MAC
	SrcIP, DstIP     IPv4
	SrcPort, DstPort uint16
	Proto            uint8 // ProtoUDP or ProtoTCP
	Payload          []byte
}

// Build writes a well-formed Ethernet+IPv4+UDP/TCP packet into dst and
// returns the total frame length. dst must be large enough
// (EtherLen+IPv4Len+L4+payload).
func Build(dst []byte, cfg BuildConfig) (int, error) {
	l4len := UDPLen
	if cfg.Proto == ProtoTCP {
		l4len = TCPLen
	} else if cfg.Proto == 0 {
		cfg.Proto = ProtoUDP
	}
	total := EtherLen + IPv4Len + l4len + len(cfg.Payload)
	if len(dst) < total {
		return 0, fmt.Errorf("eth: build buffer too small: need %d, have %d", total, len(dst))
	}
	copy(dst[0:6], cfg.DstMAC[:])
	copy(dst[6:12], cfg.SrcMAC[:])
	binary.BigEndian.PutUint16(dst[12:14], EtherTypeIPv4)

	ip := dst[EtherLen:]
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = 0
	binary.BigEndian.PutUint16(ip[2:4], uint16(IPv4Len+l4len+len(cfg.Payload)))
	binary.BigEndian.PutUint16(ip[4:6], 0) // identification
	binary.BigEndian.PutUint16(ip[6:8], 0) // flags/fragment
	ip[8] = 64                             // TTL
	ip[9] = cfg.Proto
	ip[10], ip[11] = 0, 0
	copy(ip[12:16], cfg.SrcIP[:])
	copy(ip[16:20], cfg.DstIP[:])

	l4 := ip[IPv4Len:]
	binary.BigEndian.PutUint16(l4[0:2], cfg.SrcPort)
	binary.BigEndian.PutUint16(l4[2:4], cfg.DstPort)
	if cfg.Proto == ProtoTCP {
		binary.BigEndian.PutUint32(l4[4:8], 1)  // seq
		binary.BigEndian.PutUint32(l4[8:12], 0) // ack
		l4[12] = (TCPLen / 4) << 4              // data offset
		l4[13] = 0x18                           // PSH|ACK
		binary.BigEndian.PutUint16(l4[14:16], 0xffff)
		l4[16], l4[17] = 0, 0 // checksum (left zero; NICs offload it)
		l4[18], l4[19] = 0, 0
		copy(l4[TCPLen:], cfg.Payload)
	} else {
		binary.BigEndian.PutUint16(l4[4:6], uint16(UDPLen+len(cfg.Payload)))
		l4[6], l4[7] = 0, 0
		copy(l4[UDPLen:], cfg.Payload)
	}

	f := Frame{raw: dst[:total]}
	f.SetIPChecksum(f.ComputeIPChecksum())
	return total, nil
}
