package pcie

import (
	"errors"
	"math"
	"testing"

	"github.com/opencloudnext/dhl-go/internal/eventsim"
	"github.com/opencloudnext/dhl-go/internal/faultinject"
	"github.com/opencloudnext/dhl-go/internal/perf"
)

func TestDriverModeDefaults(t *testing.T) {
	sim := eventsim.New()
	uio := NewEngine(sim, Config{})
	if uio.Mode() != UIOPoll {
		t.Errorf("default mode %v", uio.Mode())
	}
	kern := NewEngine(sim, Config{Mode: InKernel})
	if kern.Mode() != InKernel {
		t.Errorf("kernel mode %v", kern.Mode())
	}
	if UIOPoll.String() != "uio-poll" || InKernel.String() != "in-kernel" {
		t.Error("mode strings")
	}
}

func TestSustainedCurveAnchors(t *testing.T) {
	sim := eventsim.New()
	e := NewEngine(sim, Config{})
	// Figure 4(a): >= 42 Gbps only for transfers >= 6 KB.
	if got := e.SustainedBps(6144) / 1e9; got < 42 || got > 43 {
		t.Errorf("6KB sustained %.2f Gbps", got)
	}
	if got := e.SustainedBps(64) / 1e9; got > 15 {
		t.Errorf("64B sustained %.2f Gbps should be far below ceiling", got)
	}
	// Monotone in size.
	prev := 0.0
	for _, s := range []int{64, 256, 1024, 4096, 16384, 65536} {
		cur := e.SustainedBps(s)
		if cur <= prev {
			t.Errorf("curve not monotone at %dB", s)
		}
		prev = cur
	}
	if e.SustainedBps(0) != 0 {
		t.Error("zero size should have zero throughput")
	}
}

func TestRoundTripAnchors(t *testing.T) {
	sim := eventsim.New()
	e := NewEngine(sim, Config{})
	// Figure 4(b): ~2us small-transfer RTT, 3.8us at 6KB.
	if got := e.RoundTripPs(64).Micros(); got < 1.4 || got > 2.2 {
		t.Errorf("64B RTT %.2fus", got)
	}
	if got := e.RoundTripPs(6144).Micros(); got < 3.4 || got > 4.2 {
		t.Errorf("6KB RTT %.2fus", got)
	}
	kern := NewEngine(sim, Config{Mode: InKernel})
	if got := kern.RoundTripPs(64).Micros(); got < 9000 {
		t.Errorf("in-kernel RTT %.0fus, want ~10ms", got)
	}
	remote := NewEngine(sim, Config{RemoteNUMA: true})
	delta := remote.RoundTripPs(64) - e.RoundTripPs(64)
	if math.Abs(float64(delta)-perf.DMANUMAPenaltyPs) > 1000 {
		t.Errorf("NUMA penalty %v ps", delta)
	}
}

func TestTransferValidation(t *testing.T) {
	sim := eventsim.New()
	e := NewEngine(sim, Config{})
	if _, _, err := e.Transfer(H2C, 0, nil); !errors.Is(err, ErrZeroSize) {
		t.Errorf("zero: %v", err)
	}
	if _, _, err := e.Transfer(H2C, MaxTransfer+1, nil); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized: %v", err)
	}
}

func TestTransferSerializesPerDirection(t *testing.T) {
	sim := eventsim.New()
	e := NewEngine(sim, Config{})
	var first, second eventsim.Time
	c1, _, err := e.Transfer(H2C, 6144, func() { first = sim.Now() })
	if err != nil {
		t.Fatal(err)
	}
	c2, _, err := e.Transfer(H2C, 6144, func() { second = sim.Now() })
	if err != nil {
		t.Fatal(err)
	}
	sim.RunAll()
	if first != c1 || second != c2 {
		t.Errorf("callbacks at %v/%v, scheduled %v/%v", first, second, c1, c2)
	}
	occ := eventsim.Time((6144 + perf.DMAOverheadBytes) * 8 / perf.DMAMaxBps * 1e12)
	if second-first != occ {
		t.Errorf("serialization gap %v, want %v", second-first, occ)
	}
}

func TestDirectionsAreIndependent(t *testing.T) {
	sim := eventsim.New()
	e := NewEngine(sim, Config{})
	var h2c, c2h eventsim.Time
	_, _, _ = e.Transfer(H2C, 6144, func() { h2c = sim.Now() })
	_, _, _ = e.Transfer(C2H, 6144, func() { c2h = sim.Now() })
	sim.RunAll()
	if h2c != c2h {
		t.Errorf("full-duplex directions should complete together: %v vs %v", h2c, c2h)
	}
}

func TestBacklogAndStats(t *testing.T) {
	sim := eventsim.New()
	e := NewEngine(sim, Config{})
	if e.Backlog(H2C) != 0 {
		t.Error("idle backlog non-zero")
	}
	for i := 0; i < 4; i++ {
		if _, _, err := e.Transfer(H2C, 6144, nil); err != nil {
			t.Fatal(err)
		}
	}
	if e.Backlog(H2C) <= 0 {
		t.Error("backlog not tracked")
	}
	if e.Backlog(C2H) != 0 {
		t.Error("C2H backlog leaked from H2C")
	}
	st := e.DirStats(H2C)
	if st.Transfers != 4 || st.Bytes != 4*6144 {
		t.Errorf("stats %+v", st)
	}
	sim.Run(1 * eventsim.Second) // advance past all booked occupancy
	if e.Backlog(H2C) != 0 {
		t.Error("backlog after drain")
	}
}

func TestMeasuredThroughputMatchesCurve(t *testing.T) {
	// Saturating one direction must yield exactly the modeled curve.
	for _, size := range []int{64, 1024, 6144, 65536} {
		sim := eventsim.New()
		e := NewEngine(sim, Config{})
		var bytes uint64
		n := 2000
		for i := 0; i < n; i++ {
			if _, _, err := e.Transfer(H2C, size, func() { bytes += uint64(size) }); err != nil {
				t.Fatal(err)
			}
		}
		sim.RunAll()
		// Completion of the last transfer includes one one-way latency;
		// subtract it for the pure serialization rate.
		elapsed := sim.Now() - eventsim.Time(perf.DMABaseRTTPs/2)
		got := float64(bytes) * 8 / elapsed.Seconds()
		want := e.SustainedBps(size)
		if rel := got / want; rel < 0.999 || rel > 1.001 {
			t.Errorf("%dB: measured %.3f Gbps, curve %.3f Gbps", size, got/1e9, want/1e9)
		}
	}
}

func TestTransferInjectedError(t *testing.T) {
	sim := eventsim.New()
	plan := faultinject.MustPlan(1, faultinject.Spec{Kind: faultinject.DMAH2CError, EveryN: 2})
	e := NewEngine(sim, Config{Faults: plan})
	if _, _, err := e.Transfer(H2C, 1024, nil); err != nil {
		t.Fatalf("first transfer: %v", err)
	}
	if _, _, err := e.Transfer(H2C, 1024, nil); !errors.Is(err, ErrTransferFault) {
		t.Fatalf("second transfer: %v, want ErrTransferFault", err)
	}
	st := e.DirStats(H2C)
	if st.Faults != 1 || st.Transfers != 1 {
		t.Errorf("stats %+v: want 1 fault, 1 completed transfer", st)
	}
	if plan.Injected(faultinject.DMAH2CError) != st.Faults {
		t.Error("injected != observed")
	}
	// C2H must be unaffected by H2C specs.
	if _, _, err := e.Transfer(C2H, 1024, nil); err != nil {
		t.Errorf("c2h: %v", err)
	}
}

func TestTransferInjectedCorruptAndStall(t *testing.T) {
	sim := eventsim.New()
	const stall = 25 * eventsim.Microsecond
	plan := faultinject.MustPlan(1,
		faultinject.Spec{Kind: faultinject.DMAC2HCorrupt, EveryN: 1, Count: 1},
		faultinject.Spec{Kind: faultinject.DMAC2HStall, EveryN: 1, Count: 1, Stall: stall},
	)
	e := NewEngine(sim, Config{Faults: plan})
	clean := NewEngine(sim, Config{})
	want, _, err := clean.Transfer(C2H, 2048, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, outcome, err := e.Transfer(C2H, 2048, nil)
	if err != nil {
		t.Fatal(err)
	}
	if outcome&faultinject.Corrupted == 0 || outcome&faultinject.Stalled == 0 {
		t.Fatalf("outcome %b, want corrupted|stalled", outcome)
	}
	if got != want+stall {
		t.Errorf("stalled completion %v, want %v + %v", got, want, stall)
	}
	st := e.DirStats(C2H)
	if st.Corrupted != 1 || st.Stalled != 1 || st.StallPs != stall {
		t.Errorf("stats %+v", st)
	}
	// Counts exhausted: the next transfer is clean and, critically, the
	// stall did not book channel occupancy.
	next, outcome, err := e.Transfer(C2H, 2048, nil)
	if err != nil || outcome != 0 {
		t.Fatalf("post-storm transfer outcome=%b err=%v", outcome, err)
	}
	nextClean, _, _ := clean.Transfer(C2H, 2048, nil)
	if next != nextClean {
		t.Errorf("stall leaked into channel occupancy: %v vs %v", next, nextClean)
	}
}
