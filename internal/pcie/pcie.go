// Package pcie models the host<->FPGA data transfer layer of DHL: a
// scatter-gather packet DMA engine behind either the UIO-based poll-mode
// driver the paper builds (§IV-A1) or the Northwest Logic in-kernel driver
// it compares against.
//
// The model is analytic and calibrated against Figure 4 (see
// internal/perf): each direction (H2C = host-to-card, C2H = card-to-host)
// is a serial channel whose per-transfer occupancy embeds the
// per-transaction overhead that makes small transfers slow, plus a base
// propagation latency that makes up the round-trip time. PCIe is full
// duplex, so the two directions are independent channels.
package pcie

import (
	"errors"
	"fmt"

	"github.com/opencloudnext/dhl-go/internal/eventsim"
	"github.com/opencloudnext/dhl-go/internal/faultinject"
	"github.com/opencloudnext/dhl-go/internal/perf"
	"github.com/opencloudnext/dhl-go/internal/telemetry"
)

// DriverMode selects the host driver model.
type DriverMode int

// Driver modes compared in Figure 4.
const (
	// UIOPoll is DHL's userspace-I/O poll-mode driver: registers mapped
	// into userspace, no syscalls, no interrupts (§IV-A1).
	UIOPoll DriverMode = iota + 1
	// InKernel is the reference in-kernel driver: read()/write() syscalls
	// and interrupt-driven completion, costing milliseconds per transfer.
	InKernel
)

// String names the driver mode.
func (m DriverMode) String() string {
	switch m {
	case UIOPoll:
		return "uio-poll"
	case InKernel:
		return "in-kernel"
	default:
		return fmt.Sprintf("DriverMode(%d)", int(m))
	}
}

// Direction labels a DMA channel.
type Direction int

// DMA directions.
const (
	// H2C moves data from host memory to the card.
	H2C Direction = iota + 1
	// C2H moves data from the card to host memory.
	C2H
)

// Errors returned by the engine.
var (
	// ErrTooLarge reports a transfer beyond the SG engine's 64 KB
	// descriptor chain limit (§VI.3: the engine is optimized for
	// networking packets; rte_mbuf bounds data at 64 KB).
	ErrTooLarge = errors.New("pcie: transfer exceeds 64KB scatter-gather limit")
	// ErrZeroSize reports an empty transfer.
	ErrZeroSize = errors.New("pcie: zero-size transfer")
	// ErrTransferFault reports an injected DMA fault: the descriptor post
	// failed and no data moved. Transient by definition — the transfer
	// layer retries with backoff before giving up.
	ErrTransferFault = errors.New("pcie: dma transfer fault")
)

// MaxTransfer is the largest supported single transfer.
const MaxTransfer = 64 * 1024

// Config parameterizes an Engine.
type Config struct {
	// Mode selects the driver model. Zero selects UIOPoll.
	Mode DriverMode
	// MaxBps is the asymptotic per-direction throughput in bits/s.
	// Zero selects the calibrated PCIe Gen3 x8 value.
	MaxBps float64
	// OverheadBytes is the per-transfer overhead that shapes the
	// throughput-vs-size curve. Zero selects the calibrated value.
	OverheadBytes float64
	// BaseRTTPs is the zero-byte round-trip latency in picoseconds.
	// Zero selects the calibrated value for Mode.
	BaseRTTPs float64
	// RemoteNUMA applies the cross-socket access penalty (§IV-A2).
	RemoteNUMA bool
	// Faults is the shared fault-injection plan; nil disables injection.
	// The DMA kinds (DMAH2CError/Corrupt/Stall and the C2H trio) are
	// drawn here, after size validation, once per posted transfer.
	Faults *faultinject.Plan
	// Telemetry, when set, records every accepted transfer's service
	// time (post to completion, queueing included) into the registry's
	// per-direction DMA histograms. Nil records nothing; the probe is
	// atomic and allocation-free either way.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = UIOPoll
	}
	switch c.Mode {
	case InKernel:
		if c.MaxBps == 0 {
			c.MaxBps = perf.DMAKernelMaxBps
		}
		if c.OverheadBytes == 0 {
			c.OverheadBytes = perf.DMAKernelOverheadBytes
		}
		if c.BaseRTTPs == 0 {
			c.BaseRTTPs = perf.DMAKernelBaseRTTPs
		}
	default:
		if c.MaxBps == 0 {
			c.MaxBps = perf.DMAMaxBps
		}
		if c.OverheadBytes == 0 {
			c.OverheadBytes = perf.DMAOverheadBytes
		}
		if c.BaseRTTPs == 0 {
			c.BaseRTTPs = perf.DMABaseRTTPs
		}
	}
	return c
}

// Stats are lifetime transfer counters for one direction.
type Stats struct {
	Transfers uint64
	Bytes     uint64
	// BusyPs is accumulated channel occupancy, for utilization reporting.
	BusyPs eventsim.Time
	// Faults counts transfers failed by an injected DMA error (no data
	// moved; the post returned ErrTransferFault).
	Faults uint64
	// Corrupted counts transfers delivered with a garbled payload header.
	Corrupted uint64
	// Stalled counts transfers whose completion was delayed by an
	// injected stall.
	Stalled uint64
	// StallPs is the total injected stall time.
	StallPs eventsim.Time
	// LinkFlaps counts transfers failed by an injected transient link
	// retrain (ErrTransferFault; the bounded retry path absorbs them).
	LinkFlaps uint64
}

type channel struct {
	freeAt eventsim.Time
	stats  Stats
}

// Engine is the simulated SG packet DMA engine of one FPGA board.
type Engine struct {
	sim *eventsim.Sim
	cfg Config
	h2c channel
	c2h channel
}

// NewEngine creates a DMA engine on sim with cfg.
func NewEngine(sim *eventsim.Sim, cfg Config) *Engine {
	return &Engine{sim: sim, cfg: cfg.withDefaults()}
}

// Mode reports the driver model in use.
func (e *Engine) Mode() DriverMode { return e.cfg.Mode }

// SustainedBps reports the modeled steady-state throughput for transfers
// of the given size (the Figure 4(a) curve).
func (e *Engine) SustainedBps(size int) float64 {
	return perf.DMASustainedBps(e.cfg.MaxBps, e.cfg.OverheadBytes, size)
}

// RoundTripPs reports the modeled idle-engine loopback latency for the
// given size (the Figure 4(b) curve).
func (e *Engine) RoundTripPs(size int) eventsim.Time {
	return eventsim.Time(perf.DMARoundTripPs(e.cfg.BaseRTTPs, e.cfg.MaxBps, size, e.cfg.RemoteNUMA))
}

// occupancy is the channel serialization time of one transfer: the
// effective wire time of size+overhead bytes. Steady-state throughput then
// equals SustainedBps by construction.
func (e *Engine) occupancy(size int) eventsim.Time {
	return eventsim.Time((float64(size) + e.cfg.OverheadBytes) * 8 / e.cfg.MaxBps * 1e12)
}

// oneWayLatency is the extra pipeline latency a transfer sees beyond its
// serialization (half the base RTT, plus half the NUMA penalty if remote).
func (e *Engine) oneWayLatency() eventsim.Time {
	lat := eventsim.Time(e.cfg.BaseRTTPs / 2)
	if e.cfg.RemoteNUMA {
		lat += eventsim.Time(perf.DMANUMAPenaltyPs / 2)
	}
	return lat
}

// tooLarge is the cold constructor for the detailed ErrTooLarge, keeping
// fmt out of the hot Transfer path. //go:noinline keeps the size
// argument's interface boxing out of Transfer's //dhl:hotpath body under
// escape analysis.
//
//go:noinline
func tooLarge(size int) error {
	return fmt.Errorf("%w: %d bytes", ErrTooLarge, size)
}

// faultKinds maps a channel to its fault-kind triple (error, corrupt,
// stall) in the shared plan.
var (
	h2cFaultKinds = [3]faultinject.Kind{faultinject.DMAH2CError, faultinject.DMAH2CCorrupt, faultinject.DMAH2CStall}
	c2hFaultKinds = [3]faultinject.Kind{faultinject.DMAC2HError, faultinject.DMAC2HCorrupt, faultinject.DMAC2HStall}
)

// Transfer schedules a transfer of size bytes on direction dir and invokes
// done when the data has fully arrived at the other side. It returns the
// scheduled completion time and, when fault injection is armed, the
// injected Outcome: a Stalled bit means the completion time already
// includes the injected delay; a Corrupted bit means the caller — who
// owns the bytes the size stands for — must garble the payload header
// (faultinject.CorruptBatchHeader) before the data is consumed. An
// injected error fails the post with ErrTransferFault after validation
// but before any channel time is booked. Transfer is on the per-batch
// data path and does not allocate.
//
//dhl:hotpath
func (e *Engine) Transfer(dir Direction, size int, done func()) (eventsim.Time, faultinject.Outcome, error) {
	if size <= 0 {
		return 0, 0, ErrZeroSize
	}
	if size > MaxTransfer {
		return 0, 0, tooLarge(size)
	}
	ch := &e.h2c
	kinds := &h2cFaultKinds
	if dir == C2H {
		ch = &e.c2h
		kinds = &c2hFaultKinds
	}
	var outcome faultinject.Outcome
	var stall eventsim.Time
	if f := e.cfg.Faults; f != nil {
		if f.Fire(faultinject.PCIeLinkFlap) {
			// A link retrain hits whichever direction posted next; the
			// channel itself recovers instantly, so no occupancy is booked
			// and the bounded retry path absorbs the failure.
			ch.stats.LinkFlaps++
			return 0, 0, ErrTransferFault
		}
		if f.Fire(kinds[0]) {
			ch.stats.Faults++
			return 0, 0, ErrTransferFault
		}
		if f.Fire(kinds[1]) {
			ch.stats.Corrupted++
			outcome |= faultinject.Corrupted
		}
		if f.Fire(kinds[2]) {
			ch.stats.Stalled++
			outcome |= faultinject.Stalled
			stall = f.StallFor(kinds[2])
			ch.stats.StallPs += stall
		}
	}
	start := e.sim.Now()
	if ch.freeAt > start {
		start = ch.freeAt
	}
	occ := e.occupancy(size)
	ch.freeAt = start + occ
	ch.stats.Transfers++
	ch.stats.Bytes += uint64(size)
	ch.stats.BusyPs += occ
	// An injected stall extends this transfer's pipeline latency only —
	// it does not book channel occupancy, so one stalled descriptor does
	// not back-pressure the whole direction into a timeout cascade.
	complete := ch.freeAt + e.oneWayLatency() + stall
	if tel := e.cfg.Telemetry; tel != nil {
		h := &tel.DMAH2C
		if dir == C2H {
			h = &tel.DMAC2H
		}
		h.Observe(complete - e.sim.Now())
	}
	if done != nil {
		e.sim.At(complete, done)
	}
	return complete, outcome, nil
}

// Backlog reports how far in the future the direction's channel is booked,
// used by the runtime to apply back-pressure instead of queueing unbounded
// work on the DMA engine.
//
//dhl:hotpath
func (e *Engine) Backlog(dir Direction) eventsim.Time {
	ch := &e.h2c
	if dir == C2H {
		ch = &e.c2h
	}
	if ch.freeAt <= e.sim.Now() {
		return 0
	}
	return ch.freeAt - e.sim.Now()
}

// DirStats reports the counters of one direction.
func (e *Engine) DirStats(dir Direction) Stats {
	if dir == C2H {
		return e.c2h.stats
	}
	return e.h2c.stats
}
