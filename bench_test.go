// Benchmarks regenerating every table and figure of the paper's
// evaluation (one Benchmark per exhibit, reporting the headline metrics
// via b.ReportMetric), plus micro-benchmarks of the real computational
// substrates. `go test -bench=. -benchmem` prints the full series;
// cmd/dhl-bench renders the same data as formatted tables.
package dhl_test

import (
	"fmt"
	"strings"
	"testing"

	"github.com/opencloudnext/dhl-go/internal/eventsim"
	"github.com/opencloudnext/dhl-go/internal/harness"
)

// unit builds a ReportMetric unit label, replacing whitespace (metric
// units must not contain it).
func unit(format string, args ...any) string {
	return strings.ReplaceAll(fmt.Sprintf(format, args...), " ", "_")
}

// benchWindow shortens experiment windows so the full suite stays
// tractable; shapes are unaffected (throughput converges within ~5 ms of
// virtual time).
func benchWindow(cfg harness.SingleNFConfig) harness.SingleNFConfig {
	cfg.Warmup = 2 * eventsim.Millisecond
	cfg.Window = 6 * eventsim.Millisecond
	return cfg
}

// BenchmarkTable1_SingleCoreNFs regenerates Table I (single-core DPDK NF
// performance: L2fwd, L3fwd-lpm, IPsec-gateway at 64 B on a 10G NIC).
func BenchmarkTable1_SingleCoreNFs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunTable1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.CyclesPerPkt, unit("cycles/%s", r.NF))
				b.ReportMetric(r.Throughput.WireBps/1e9, unit("Gbps/%s", r.NF))
			}
		}
	}
}

// BenchmarkFigure4_DMAEngine regenerates Figure 4's anchor points (DMA
// loopback throughput and latency for the three driver variants).
func BenchmarkFigure4_DMAEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, v := range []harness.DMAVariant{harness.DMAInKernel, harness.DMARemoteNUMA, harness.DMALocalNUMA} {
			for _, size := range []int{64, 1024, 6144, 65536} {
				r, err := harness.RunDMALoopback(v, size)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(r.ThroughputBps/1e9, unit("Gbps/%v/%dB", v, size))
				}
			}
		}
	}
}

func benchFigure6(b *testing.B, kind harness.NFKind, mode harness.Mode, size int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		thr, lat, err := harness.MeasureSingleNF(benchWindow(harness.SingleNFConfig{
			Kind: kind, Mode: mode, FrameSize: size,
		}))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(thr.Throughput.InputBps/1e9, "Gbps")
			b.ReportMetric(lat.Latency.MeanUs, "us-mean")
			b.ReportMetric(lat.Latency.P99Us, "us-p99")
		}
	}
}

// BenchmarkFigure6_IPsecCPU64B .. BenchmarkFigure6_NIDSDHL1500B regenerate
// the endpoints of Figure 6's four sub-figures (full sweeps via
// cmd/dhl-bench fig6).
func BenchmarkFigure6_IPsecCPU64B(b *testing.B) {
	benchFigure6(b, harness.IPsecGateway, harness.CPUOnly, 64)
}

func BenchmarkFigure6_IPsecCPU1500B(b *testing.B) {
	benchFigure6(b, harness.IPsecGateway, harness.CPUOnly, 1500)
}

func BenchmarkFigure6_IPsecDHL64B(b *testing.B) {
	benchFigure6(b, harness.IPsecGateway, harness.DHL, 64)
}

func BenchmarkFigure6_IPsecDHL1500B(b *testing.B) {
	benchFigure6(b, harness.IPsecGateway, harness.DHL, 1500)
}

func BenchmarkFigure6_IPsecIO64B(b *testing.B) {
	benchFigure6(b, harness.IPsecGateway, harness.IOOnly, 64)
}

func BenchmarkFigure6_NIDSCPU64B(b *testing.B) {
	benchFigure6(b, harness.NIDS, harness.CPUOnly, 64)
}

func BenchmarkFigure6_NIDSCPU1500B(b *testing.B) {
	benchFigure6(b, harness.NIDS, harness.CPUOnly, 1500)
}

func BenchmarkFigure6_NIDSDHL64B(b *testing.B) {
	benchFigure6(b, harness.NIDS, harness.DHL, 64)
}

func BenchmarkFigure6_NIDSDHL1500B(b *testing.B) {
	benchFigure6(b, harness.NIDS, harness.DHL, 1500)
}

// BenchmarkFigure7_SharedAcc regenerates Figure 7(a): two IPsec gateway
// instances sharing the ipsec-crypto accelerator module.
func BenchmarkFigure7_SharedAcc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, size := range []int{64, 512, 1500} {
			r, err := harness.RunMultiNF(harness.MultiNFConfig{
				SharedAccelerator: true, FrameSize: size,
				Warmup: 2 * eventsim.Millisecond, Window: 8 * eventsim.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(r.NF1.WireBps/1e9, unit("Gbps/ipsec1/%dB", size))
				b.ReportMetric(r.NF2.WireBps/1e9, unit("Gbps/ipsec2/%dB", size))
			}
		}
	}
}

// BenchmarkFigure7_DiffAcc regenerates Figure 7(b): IPsec + NIDS with
// different accelerator modules on the same FPGA.
func BenchmarkFigure7_DiffAcc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, size := range []int{64, 512, 1500} {
			r, err := harness.RunMultiNF(harness.MultiNFConfig{
				SharedAccelerator: false, FrameSize: size,
				Warmup: 2 * eventsim.Millisecond, Window: 8 * eventsim.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(r.NF1.WireBps/1e9, unit("Gbps/ipsec/%dB", size))
				b.ReportMetric(r.NF2.WireBps/1e9, unit("Gbps/nids/%dB", size))
			}
		}
	}
}

// BenchmarkTable5_PR regenerates Table V (partial reconfiguration times
// and the no-interference property).
func BenchmarkTable5_PR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunTable5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.PRTimeMs, unit("ms/%s", r.Module))
			}
		}
	}
}

// BenchmarkTable6_Utilization regenerates Table VI (module resource
// footprints and the per-board packing bounds).
func BenchmarkTable6_Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.RunTable6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.MaxIPsecCrypto), "fit/ipsec-crypto")
			b.ReportMetric(float64(res.MaxPatternMatching), "fit/pattern-matching")
		}
	}
}

// BenchmarkAblation_Batching regenerates ablation A1: fixed batch sizes
// versus the §VI.2 adaptive controller.
func BenchmarkAblation_Batching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunBatchingAblation()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Latency.MeanUs, unit("us/%s@%.0f%%", r.Label, r.OfferedPct))
			}
		}
	}
}

// BenchmarkAblation_Driver regenerates ablation A2: driver mode and NUMA
// placement under the full DHL pipeline.
func BenchmarkAblation_Driver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunDriverAblation()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Throughput.InputBps/1e9, unit("Gbps/%s", r.Label))
			}
		}
	}
}

// BenchmarkAblation_Vertical regenerates ablation A3 (§VI.1): PCIe x16
// and multi-board scaling of the DMA ceiling.
func BenchmarkAblation_Vertical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunVerticalScaling()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.AggregateGbps, unit("Gbps/%s", r.Label))
			}
		}
	}
}
