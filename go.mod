module github.com/opencloudnext/dhl-go

go 1.22
