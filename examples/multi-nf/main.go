// Multi-NF example: the Figure 7 scenario — multiple software NFs sharing
// one FPGA, with data isolation between them (§IV-B).
//
// Case (a): two IPsec gateway instances call the *same* accelerator module
// (ipsec-crypto). Case (b): an IPsec gateway and an NIDS call *different*
// accelerator modules on the same board. Each NF owns two 10G ports. The
// example also prints the isolation cross-check: the number of packets
// whose returned nf_id did not match their owner (must be zero).
//
// Run with: go run ./examples/multi-nf
package main

import (
	"fmt"
	"log"

	"github.com/opencloudnext/dhl-go/internal/harness"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("(a) two IPsec gateways sharing the ipsec-crypto module:")
	fmt.Printf("%-8s %-14s %-14s %s\n", "size", "IPsec1 (Gbps)", "IPsec2 (Gbps)", "nf_id mismatches")
	for _, size := range []int{64, 256, 1024, 1500} {
		r, err := harness.RunMultiNF(harness.MultiNFConfig{SharedAccelerator: true, FrameSize: size})
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %-14.2f %-14.2f %d\n", size, r.NF1.WireBps/1e9, r.NF2.WireBps/1e9, r.NFIDMismatches)
	}

	fmt.Println("\n(b) IPsec gateway + NIDS with different accelerator modules:")
	fmt.Printf("%-8s %-14s %-14s %s\n", "size", "IPsec (Gbps)", "NIDS (Gbps)", "nf_id mismatches")
	for _, size := range []int{64, 256, 1024, 1500} {
		r, err := harness.RunMultiNF(harness.MultiNFConfig{SharedAccelerator: false, FrameSize: size})
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %-14.2f %-14.2f %d\n", size, r.NF1.WireBps/1e9, r.NF2.WireBps/1e9, r.NFIDMismatches)
	}
	fmt.Println("\n(the paper reports both instances reaching their 2x10G port ceiling of")
	fmt.Println(" 20 Gbps; a zero mismatch count demonstrates the §IV-B data isolation)")
	return nil
}
