// Quickstart: the Listing 1 -> Listing 2 transformation from the paper.
//
// A software NF that called aes_256_ctr() in a loop (Listing 1) is shifted
// to the DHL hardware function call flow (Listing 2): register, search the
// hardware function table, configure the accelerator, tag packets with
// (nf_id, acc_id), send them to the shared IBQ and poll the private OBQ.
//
// Run with: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	dhl "github.com/opencloudnext/dhl-go"
	"github.com/opencloudnext/dhl-go/internal/eventsim"
	"github.com/opencloudnext/dhl-go/internal/hwfunc"
	"github.com/opencloudnext/dhl-go/internal/swcrypto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := dhl.Open(dhl.SystemConfig{})
	if err != nil {
		return err
	}

	// --- Listing 2, control plane ------------------------------------
	nfID, err := sys.Register("quickstart-nf", 0) // DHL_register()
	if err != nil {
		return err
	}
	accID, err := sys.SearchByName(dhl.IPsecCrypto, 0) // DHL_search_by_name()
	if err != nil {
		return err
	}
	key := make([]byte, swcrypto.KeySize)
	authKey := make([]byte, swcrypto.AuthKeySize)
	for i := range key {
		key[i] = byte(i * 7)
	}
	for i := range authKey {
		authKey[i] = byte(i * 13)
	}
	blob, err := hwfunc.EncodeIPsecCryptoConfig(key, authKey, 0xCAFEBABE)
	if err != nil {
		return err
	}
	if err := sys.AccConfigure(accID, blob); err != nil { // DHL_acc_configure()
		return err
	}
	sys.Settle() // partial reconfiguration completes (~29 ms of virtual time)
	fmt.Println("hardware function table after setup:")
	for _, row := range sys.HFTable() {
		fmt.Println(" ", row)
	}

	// --- Listing 2, data plane ---------------------------------------
	const nPkts = 8
	plaintexts := make([][]byte, nPkts)
	pkts := make([]*dhl.Packet, nPkts)
	for i := range pkts {
		m, aerr := sys.Pool().Alloc()
		if aerr != nil {
			return aerr
		}
		msg := fmt.Sprintf("packet %d payload: the quick brown fox", i)
		plaintexts[i] = []byte(msg)
		// The ipsec-crypto request carries a 2-byte offset prefix; offset
		// 0 encrypts the whole record body.
		if aerr := m.AppendBytes([]byte{0, 0}); aerr != nil {
			return errors.Join(aerr, sys.Pool().Free(m))
		}
		if aerr := m.AppendBytes([]byte(msg)); aerr != nil {
			return errors.Join(aerr, sys.Pool().Free(m))
		}
		m.AccID = uint16(accID) // pkts[i].acc_id = acc_id
		pkts[i] = m
	}
	sent, err := sys.SendPackets(nfID, pkts) // DHL_send_packets()
	if err != nil {
		return err
	}
	fmt.Printf("\nsent %d packets to the shared IBQ\n", sent)

	// Advance virtual time while polling the private OBQ.
	sys.Sim().Run(sys.Sim().Now() + 200*eventsim.Microsecond)
	out := make([]*dhl.Packet, nPkts)
	n, err := sys.ReceivePackets(nfID, out) // DHL_receive_packets()
	if err != nil {
		return err
	}
	fmt.Printf("received %d post-processed packets from the private OBQ\n\n", n)

	// Verify the hardware function really encrypted the payloads.
	eng, err := swcrypto.NewEngine(swcrypto.Config{Key: key, AuthKey: authKey, Salt: 0xCAFEBABE})
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		data := out[i].Data()
		// Response layout: [iv:8][ciphertext][tag:12].
		iv := uint64(0)
		for _, b := range data[:8] {
			iv = iv<<8 | uint64(b)
		}
		body := append([]byte(nil), data[8:len(data)-swcrypto.TagSize]...)
		var tag [swcrypto.TagSize]byte
		copy(tag[:], data[len(data)-swcrypto.TagSize:])
		if derr := eng.Open(body, iv, tag); derr != nil {
			return fmt.Errorf("packet %d failed authentication: %w", i, derr)
		}
		fmt.Printf("packet %d decrypts to: %q\n", i, string(body))
		if perr := sys.Pool().Free(out[i]); perr != nil {
			return perr
		}
	}
	fmt.Println("\nquickstart complete: software NF -> hardware function round trip verified")
	return nil
}
