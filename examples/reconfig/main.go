// Reconfig example: partial reconfiguration on the fly (§IV-C, §V-E,
// Table V).
//
// An IPsec gateway runs at full load while a second NF's accelerator
// module (pattern-matching) is loaded into a free reconfigurable part
// through ICAP. The example reports the reconfiguration time of each
// module and verifies the running NF's throughput is untouched.
//
// Run with: go run ./examples/reconfig
package main

import (
	"fmt"
	"log"

	"github.com/opencloudnext/dhl-go/internal/harness"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rows, err := harness.RunTable5()
	if err != nil {
		return err
	}
	fmt.Println("partial reconfiguration while the other NF keeps running:")
	fmt.Printf("%-18s %-14s %-10s %s\n", "new module", "bitstream", "PR time", "running NF throughput")
	for _, r := range rows {
		degradation := 0.0
		if r.RunningNFBeforeBps > 0 {
			degradation = 100 * (1 - r.RunningNFDuringBps/r.RunningNFBeforeBps)
		}
		fmt.Printf("%-18s %-14s %-10s %.2f -> %.2f Gbps (degradation %.2f%%)\n",
			r.Module,
			fmt.Sprintf("%.1f MB", float64(r.BitstreamBytes)/1024/1024),
			fmt.Sprintf("%.0f ms", r.PRTimeMs),
			r.RunningNFBeforeBps/1e9, r.RunningNFDuringBps/1e9, degradation)
	}
	fmt.Println("\n(Table V reports 23 ms for ipsec-crypto's 5.6 MB bitstream and 35 ms for")
	fmt.Println(" pattern-matching's 6.8 MB; §V-E reports zero throughput degradation)")
	return nil
}
