// Reconfig example: partial reconfiguration on the fly, driven over the
// live management API (§IV-C, §V-E, Table V).
//
// An IPsec gateway runs at full load while this process — acting as its
// own operator — connects to the system's /api/v1 endpoint and loads a
// second accelerator module (pattern-matching) into a free
// reconfigurable part through ICAP. The example measures the running
// NF's throughput before and during the reconfiguration and reports the
// PR time observed from the management API, then retunes the transfer
// batch size live for good measure.
//
// Run with: go run ./examples/reconfig
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	dhl "github.com/opencloudnext/dhl-go"
	"github.com/opencloudnext/dhl-go/internal/eventsim"
	"github.com/opencloudnext/dhl-go/internal/hwfunc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// gateway owns all simulation interaction: it pumps the event loop
// (which also executes posted management operations) and drives a
// saturating IPsec workload, publishing cumulative progress as atomics
// so the operator side can compute throughput over any window.
type gateway struct {
	sys   *dhl.System
	nf    dhl.NFID
	acc   dhl.AccID
	stop  chan struct{}
	wg    sync.WaitGroup
	simNs atomic.Int64 // simulation clock, nanoseconds
	bytes atomic.Int64 // payload bytes delivered back to the NF
}

func (g *gateway) pump() {
	defer g.wg.Done()
	sys, sim, pool := g.sys, g.sys.Sim(), g.sys.Pool()
	payload := bytes.Repeat([]byte{0xAB}, 1024)
	const burst = 32
	pkts := make([]*dhl.Packet, 0, burst)
	out := make([]*dhl.Packet, 2*burst)
	for {
		select {
		case <-g.stop:
			return
		default:
		}
		pkts = pkts[:0]
		for i := 0; i < burst; i++ {
			m, err := pool.Alloc()
			if err != nil {
				break // pool pressure: let in-flight packets return first
			}
			req, err := hwfunc.EncodeIPsecRequest(nil, payload, 0)
			if err != nil {
				log.Fatal(err)
			}
			if err := m.AppendBytes(req); err != nil {
				log.Fatal(err)
			}
			m.AccID = uint16(g.acc)
			pkts = append(pkts, m)
		}
		if len(pkts) > 0 {
			n, err := sys.SendPackets(g.nf, pkts)
			if err != nil {
				log.Fatal(err)
			}
			for _, m := range pkts[n:] {
				_ = pool.Free(m)
			}
		}
		sim.Run(sim.Now() + 100*eventsim.Microsecond)
		got, err := sys.ReceivePackets(g.nf, out)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < got; i++ {
			g.bytes.Add(int64(out[i].Len()))
			_ = pool.Free(out[i])
		}
		g.simNs.Store(int64(sim.Now() / eventsim.Nanosecond))
		// Yield so the operator goroutine's RPCs interleave promptly.
		time.Sleep(50 * time.Microsecond)
	}
}

// throughput measures the gateway's delivered Gbps over roughly window
// of simulated time.
func (g *gateway) throughput(window time.Duration) float64 {
	startNs, startBytes := g.simNs.Load(), g.bytes.Load()
	target := startNs + window.Nanoseconds()
	for g.simNs.Load() < target {
		time.Sleep(200 * time.Microsecond)
	}
	elapsedNs := g.simNs.Load() - startNs
	moved := g.bytes.Load() - startBytes
	return float64(moved) * 8 / float64(elapsedNs) // bits per simulated ns == Gbps
}

func run() error {
	sys, err := dhl.Open(dhl.SystemConfig{}, dhl.WithControlPlane())
	if err != nil {
		return err
	}
	exp, err := sys.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer func() {
		if cerr := exp.Close(); cerr != nil {
			log.Printf("close exporter: %v", cerr)
		}
	}()
	fmt.Printf("operator surface at http://%s (api: /api/v1)\n", exp.Addr())

	// Stand the IPsec gateway up in-process, then hand the event loop to
	// the pump goroutine; from here on every change goes over the API.
	nf, err := sys.Register("ipsec-gateway", 0)
	if err != nil {
		return err
	}
	acc, err := sys.SearchByName(dhl.IPsecCrypto, 0)
	if err != nil {
		return err
	}
	blob, err := hwfunc.EncodeIPsecCryptoConfig(
		bytes.Repeat([]byte{0x42}, 32), bytes.Repeat([]byte{0x24}, 20), 1)
	if err != nil {
		return err
	}
	if err := sys.AccConfigure(acc, blob); err != nil {
		return err
	}
	sys.Settle()
	g := &gateway{sys: sys, nf: nf, acc: acc, stop: make(chan struct{})}
	g.wg.Add(1)
	go g.pump()
	defer func() { close(g.stop); g.wg.Wait() }()

	c := dhl.DialControl(exp.Addr())
	defer func() { _ = c.Close() }()
	if err := c.Call("sys.ping", nil, nil); err != nil {
		return err
	}

	before := g.throughput(2 * time.Millisecond)

	// Load pattern-matching into a free PR region while the gateway keeps
	// forwarding, and watch sys.info for the region to come ready — the
	// ICAP transfer runs concurrently with live traffic (§V-E).
	prStart := time.Duration(g.simNs.Load())
	var load struct {
		AccID dhl.AccID `json:"acc_id"`
	}
	if err := c.Call("acc.load", map[string]any{"hf": dhl.PatternMatching, "node": 0}, &load); err != nil {
		return err
	}
	during := g.throughput(2 * time.Millisecond)
	ready := false
	var prTime time.Duration
	for !ready {
		var info struct {
			Accelerators []struct {
				AccID dhl.AccID `json:"acc_id"`
				Ready bool      `json:"ready"`
			} `json:"accelerators"`
		}
		if err := c.Call("sys.info", nil, &info); err != nil {
			return err
		}
		for _, a := range info.Accelerators {
			if a.AccID == load.AccID && a.Ready {
				ready = true
				prTime = time.Duration(g.simNs.Load()) - prStart
			}
		}
		if !ready {
			time.Sleep(500 * time.Microsecond)
		}
	}
	after := g.throughput(2 * time.Millisecond)

	degradation := 0.0
	if before > 0 {
		degradation = 100 * (1 - during/before)
	}
	fmt.Println("\npartial reconfiguration while the IPsec gateway keeps running:")
	fmt.Printf("%-20s %-12s %s\n", "new module", "PR time", "running NF throughput")
	fmt.Printf("%-20s %-12s %.2f -> %.2f Gbps during PR, %.2f after (degradation %.2f%%)\n",
		dhl.PatternMatching, fmt.Sprintf("%.0f ms", prTime.Seconds()*1e3),
		before, during, after, degradation)

	// Live retune, same channel: halve the transfer batch size and show
	// the gateway still runs (smaller batches trade throughput for
	// latency; tune.batch answers with the applied value).
	var tuned struct {
		BatchBytes int `json:"batch_bytes"`
	}
	if err := c.Call("tune.batch", map[string]any{"bytes": 3072}, &tuned); err != nil {
		return err
	}
	retuned := g.throughput(2 * time.Millisecond)
	fmt.Printf("\nlive tune.batch -> %d bytes; gateway still delivering %.2f Gbps\n",
		tuned.BatchBytes, retuned)
	fmt.Println("\n(Table V reports 23-35 ms PR times; §V-E reports zero throughput degradation)")
	return nil
}
