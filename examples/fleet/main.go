// Fleet example: board-level failure domains — placement, replication
// and live migration across a multi-FPGA fleet.
//
// A two-board system loads the ipsec-crypto accelerator, warms a
// load-sharing replica on the second board, then hard-kills the primary's
// board mid-traffic. The placement layer promotes the replica with a
// routing-table cutover — no ICAP write, no measurable outage — and the
// conservation ledger stays balanced across the failure. The example then
// reruns the same failure through the harness without the replica to show
// the contrast: a live migration whose MTTR is the ~29 ms ICAP re-place
// of the 5.6 MB bitstream.
//
// Run with: go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"strings"

	dhl "github.com/opencloudnext/dhl-go"
	"github.com/opencloudnext/dhl-go/internal/eventsim"
	"github.com/opencloudnext/dhl-go/internal/harness"
	"github.com/opencloudnext/dhl-go/internal/hwfunc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := dhl.Open(dhl.SystemConfig{FPGAsPerNode: 2})
	if err != nil {
		return err
	}

	// Load ipsec-crypto: the scheduler first-fits it onto board 0.
	acc, err := sys.SearchByName(dhl.IPsecCrypto, 0)
	if err != nil {
		return err
	}
	var key [32]byte
	var authKey [20]byte
	for i := range key {
		key[i] = byte(i + 1)
	}
	for i := range authKey {
		authKey[i] = byte(0xa0 + i)
	}
	blob, err := hwfunc.EncodeIPsecCryptoConfig(key[:], authKey[:], 0x01020304)
	if err != nil {
		return err
	}
	if err := sys.AccConfigure(acc, blob); err != nil {
		return err
	}
	sys.Settle() // ~29 ms ICAP load of the 5.6 MB bitstream

	// Warm a replica on the second board: same bitstream, same config
	// replay, then it joins the weighted round-robin rotation.
	board, err := sys.Replicate(acc, -1)
	if err != nil {
		return err
	}
	fmt.Printf("replica of acc_id %d warming on board %d\n", acc, board)
	sys.Settle()
	printPlacement(sys)

	// Pace traffic and kill board 0 mid-stream.
	nf, err := sys.Register("fleet-demo", 0)
	if err != nil {
		return err
	}
	sim, pool := sys.Sim(), sys.Pool()
	payload := make([]byte, 0, 2+256)
	payload = append(payload, 0, 0) // encrypt the whole frame
	for i := 0; i < 256; i++ {
		payload = append(payload, byte(i))
	}
	var sent, delivered, dropped int
	scratch := make([]*dhl.Packet, 64)
	drain := func() error {
		for {
			n, derr := sys.ReceivePackets(nf, scratch)
			if derr != nil {
				return derr
			}
			if n == 0 {
				return nil
			}
			for _, m := range scratch[:n] {
				if m.Status == dhl.StatusOK {
					delivered++
				} else {
					dropped++
				}
				if ferr := pool.Free(m); ferr != nil {
					return ferr
				}
			}
		}
	}
	const rounds = 40
	for round := 0; round < rounds; round++ {
		if round == rounds/2 {
			moved, oerr := sys.OfflineBoard(0)
			if oerr != nil {
				return oerr
			}
			fmt.Printf("\nboard 0 hard-killed mid-traffic; rebalance moved %d accelerator(s)\n", moved)
			printPlacement(sys)
		}
		burst := make([]*dhl.Packet, 0, 8)
		for i := 0; i < 8; i++ {
			m, aerr := pool.Alloc()
			if aerr != nil {
				return aerr
			}
			if aerr := m.AppendBytes(payload); aerr != nil {
				if ferr := pool.Free(m); ferr != nil {
					return ferr
				}
				return aerr
			}
			m.AccID = uint16(acc)
			burst = append(burst, m)
		}
		n, serr := sys.SendPackets(nf, burst)
		if serr != nil {
			return serr
		}
		sent += n
		for _, m := range burst[n:] {
			if ferr := pool.Free(m); ferr != nil {
				return ferr
			}
		}
		sim.Run(sim.Now() + 50*eventsim.Microsecond)
		if derr := drain(); derr != nil {
			return derr
		}
	}
	sim.Run(sim.Now() + 5*eventsim.Millisecond)
	if err := drain(); err != nil {
		return err
	}
	st, err := sys.Stats(0)
	if err != nil {
		return err
	}
	fmt.Printf("\ntraffic across the board loss: sent %d, delivered ok %d, degraded %d\n",
		sent, delivered, dropped)
	fmt.Printf("ledger: IBQ drained %d = packed %d + staging drops %d; in-flight faults %d; mbufs in use %d\n",
		st.IBQDrained, st.PktsPacked, st.StagingDrops, st.DropFault, pool.InUse())

	// The contrast: the same board loss without a replica pays a live
	// migration (PR re-place on the surviving board).
	fmt.Println("\nharness contrast — the same loss with and without the warm replica:")
	res, err := harness.RunBoardFailover(harness.BoardFailoverConfig{})
	if err != nil {
		return err
	}
	for _, r := range []*harness.BoardFailoverRun{&res.Baseline, &res.NoReplica, &res.Replica} {
		fmt.Printf("%-22s %s\n", r.Label, sparkline(r.Curve, res.BaselineGoodBps))
		mttr := "no outage"
		switch {
		case r.MTTRUs > 0:
			mttr = fmt.Sprintf("outage %.0f ms", r.MTTRUs/1000)
		case r.MTTRUs < 0:
			mttr = "not recovered"
		}
		fmt.Printf("%-22s %s | floor %.1f Mbps | recovered %.1f Mbps | served by board %d\n\n",
			"", mttr, r.MinRateBps/1e6, r.RecoveredGoodBps/1e6, r.FinalBoard)
	}
	fmt.Println("each column is 1 ms of goodput; the no-replica dip is the ICAP re-place")
	fmt.Println("of the bitstream on the surviving board, the replica run never dips")
	return nil
}

// printPlacement renders the fleet placement table.
func printPlacement(sys *dhl.System) {
	fmt.Println("fleet placement:")
	for _, b := range sys.PlacementTable() {
		fmt.Printf("  board %d (node %d, %s): free %d LUTs, %d BRAM, %d region(s)\n",
			b.Board, b.Node, b.State, b.FreeLUTs, b.FreeBRAM, b.FreeRegions)
		for _, ep := range b.Endpoints {
			role := "replica"
			if ep.Primary {
				role = "primary"
			}
			fmt.Printf("    acc_id %d (%s) region %d: %s, weight %d, ready=%v\n",
				ep.Acc, ep.HF, ep.Region, role, ep.Weight, ep.Ready)
		}
	}
}

// sparkline renders a goodput curve against the baseline mean.
func sparkline(curve []float64, baseline float64) string {
	levels := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, r := range curve {
		frac := 0.0
		if baseline > 0 {
			frac = r / baseline
		}
		i := int(frac * float64(len(levels)-1))
		if i >= len(levels) {
			i = len(levels) - 1
		}
		if i < 0 {
			i = 0
		}
		b.WriteRune(levels[i])
	}
	return b.String()
}
