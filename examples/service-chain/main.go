// Service-chain example: the NFV deployment the paper's introduction
// motivates — a chain of software NFs on one server where only the
// computation-intensive stage touches the FPGA.
//
//	firewall (shallow, CPU) -> NAT (shallow, CPU) -> IPsec gateway
//	(shallow classification on CPU + ipsec-crypto hardware function)
//
// Each packet traverses the whole chain; the example prints per-stage
// counters and verifies the final ESP output decrypts correctly.
//
// Run with: go run ./examples/service-chain
//
// Pass -flows N to additionally stream N distinct 5-tuples through the
// flow-aware firewall stage and print the flow table's occupancy and
// memory footprint — the million-flow quickstart is:
//
//	go run ./examples/service-chain -flows 1000000
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"

	dhl "github.com/opencloudnext/dhl-go"
	"github.com/opencloudnext/dhl-go/internal/eth"
	"github.com/opencloudnext/dhl-go/internal/eventsim"
	"github.com/opencloudnext/dhl-go/internal/netdev"
	"github.com/opencloudnext/dhl-go/internal/nf"
)

func main() {
	flows := flag.Int("flows", 0, "stream this many distinct 5-tuples through the flow-aware firewall (try 1000000)")
	flag.Parse()
	if err := run(*flows); err != nil {
		log.Fatal(err)
	}
}

func run(flows int) error {
	sys, err := dhl.Open(dhl.SystemConfig{})
	if err != nil {
		return err
	}

	// Stage 1: firewall — drop a blocklisted subnet, allow web traffic.
	fw := nf.NewFirewall(nf.FirewallDeny)
	if err := fw.AddRule(nf.FirewallRule{
		SrcPrefix: 0x0A420000, SrcDepth: 16, Action: nf.FirewallDeny, Description: "blocklist 10.66/16",
	}); err != nil {
		return err
	}
	if err := fw.AddRule(nf.FirewallRule{
		Proto: eth.ProtoUDP, DstPortLo: 80, DstPortHi: 443, Action: nf.FirewallAllow, Description: "web",
	}); err != nil {
		return err
	}

	// The chain consults the firewall through its per-flow verdict cache,
	// the stateful front the flow-scale harness measures at millions of
	// flows; its tables are registered with the system so /metrics and
	// stats.get expose occupancy, memory, and eviction counters.
	ffw, err := nf.NewFlowFirewall(fw, nf.FlowFirewallConfig{
		MemBudgetBytes: 256 << 20,
		FlowTTL:        eventsim.Second,
		Clock:          sys.Sim().Now,
	})
	if err != nil {
		return err
	}
	if err := sys.RegisterFlowTables(ffw.FlowTabs()...); err != nil {
		return err
	}

	// Stage 2: source NAT behind 203.0.113.1.
	nat := nf.NewNAT(nf.NATConfig{External: eth.IPv4{203, 0, 113, 1}})

	// Stage 3: DHL IPsec gateway (crypto on the FPGA).
	sadb := nf.NewSADB()
	if err := sadb.AddDefaultSA(); err != nil {
		return err
	}
	gw, err := nf.NewIPsecGatewayDHL(sys.Runtime(), sadb, "chain-ipsec", 0)
	if err != nil {
		return err
	}
	sys.Settle()

	// Traffic: a mix of inside hosts, one of them blocklisted.
	srcs := []eth.IPv4{
		{192, 168, 1, 10},
		{192, 168, 1, 11},
		{10, 66, 0, 5}, // blocklisted
		{192, 168, 1, 12},
	}
	var inflight []*dhl.Packet
	for i, src := range srcs {
		m, aerr := sys.Pool().Alloc()
		if aerr != nil {
			return aerr
		}
		buf := make([]byte, 512)
		n, berr := eth.Build(buf, eth.BuildConfig{
			SrcMAC: eth.MAC{2, 0, 0, 0, 0, 1}, DstMAC: eth.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: src, DstIP: eth.IPv4{198, 51, 100, 7},
			SrcPort: uint16(40000 + i), DstPort: 443, Proto: eth.ProtoUDP,
			Payload: []byte(fmt.Sprintf("flow-%d confidential data", i)),
		})
		if berr != nil {
			return errors.Join(berr, sys.Pool().Free(m))
		}
		if aerr := m.AppendBytes(buf[:n]); aerr != nil {
			return errors.Join(aerr, sys.Pool().Free(m))
		}

		// CPU stages, run to completion per packet.
		if v, _ := ffw.Process(m); v != nf.VerdictForward {
			fmt.Printf("packet from %v dropped by firewall\n", src)
			if perr := sys.Pool().Free(m); perr != nil {
				return perr
			}
			continue
		}
		if v, _ := nat.ProcessOutbound(m); v != nf.VerdictForward {
			fmt.Printf("packet from %v dropped by NAT\n", src)
			if perr := sys.Pool().Free(m); perr != nil {
				return perr
			}
			continue
		}
		// Offload stage: tag and hand to the DHL runtime.
		if v, _ := gw.PreProcess(m); v != nf.VerdictForward {
			if perr := sys.Pool().Free(m); perr != nil {
				return perr
			}
			continue
		}
		inflight = append(inflight, m)
	}
	if _, err := sys.SendPackets(gw.NFID, inflight); err != nil {
		return err
	}
	sys.Sim().Run(sys.Sim().Now() + 200*eventsim.Microsecond)

	out := make([]*dhl.Packet, len(inflight))
	n, err := sys.ReceivePackets(gw.NFID, out)
	if err != nil {
		return err
	}
	fmt.Printf("\nchain output: %d encrypted packets\n", n)
	for i := 0; i < n; i++ {
		if v, _ := gw.PostProcess(out[i]); v != nf.VerdictForward {
			return fmt.Errorf("post-process failed for packet %d", i)
		}
		frame, perr := eth.Parse(out[i].Data())
		if perr != nil {
			return perr
		}
		plain, derr := nf.VerifyESP(out[i].Data(), nf.DefaultSA())
		if derr != nil {
			return fmt.Errorf("packet %d: ESP verification: %w", i, derr)
		}
		fmt.Printf("  pkt %d: src=%v (NATed) proto=ESP len=%d, decrypts to %d plaintext bytes\n",
			i, frame.SrcIP(), out[i].Len(), len(plain))
		if perr := sys.Pool().Free(out[i]); perr != nil {
			return perr
		}
	}

	fmt.Printf("\nstage counters: firewall allowed=%d denied=%d | NAT translated=%d mappings=%d | ipsec tagged=%d\n",
		fw.Allowed, fw.Denied, nat.Translated, nat.Mappings(), gw.Tagged)

	if flows > 0 {
		if err := floodFlows(sys, ffw, flows); err != nil {
			return err
		}
	}
	return nil
}

// floodFlows streams one packet from each of `flows` distinct 5-tuples
// through the flow-aware firewall, then replays the first 10k to show
// the verdict cache hitting, and prints the flow table's footprint.
func floodFlows(sys *dhl.System, ffw *nf.FlowFirewall, flows int) error {
	fmt.Printf("\nflow-scale: streaming %d distinct flows through the firewall...\n", flows)
	m, err := sys.Pool().Alloc()
	if err != nil {
		return err
	}
	defer func() { _ = sys.Pool().Free(m) }()
	buf := make([]byte, 256)
	var allowed, denied uint64
	send := func(id uint64) error {
		src, srcPort := netdev.FlowSrc(id)
		n, berr := eth.Build(buf, eth.BuildConfig{
			SrcMAC: eth.MAC{2, 0, 0, 0, 0, 1}, DstMAC: eth.MAC{2, 0, 0, 0, 0, 2},
			SrcIP: src, DstIP: eth.IPv4{198, 51, 100, 7},
			SrcPort: srcPort, DstPort: 443, Proto: eth.ProtoUDP,
			Payload: []byte("flow-scale probe"),
		})
		if berr != nil {
			return berr
		}
		m.SetLen(0)
		if aerr := m.AppendBytes(buf[:n]); aerr != nil {
			return aerr
		}
		if v, _ := ffw.Process(m); v == nf.VerdictForward {
			allowed++
		} else {
			denied++
		}
		return nil
	}
	for id := uint64(0); id < uint64(flows); id++ {
		if err := send(id); err != nil {
			return err
		}
	}
	replay := uint64(10_000)
	if replay > uint64(flows) {
		replay = uint64(flows)
	}
	for id := uint64(0); id < replay; id++ {
		if err := send(id); err != nil {
			return err
		}
	}
	fmt.Printf("flow-scale: allowed=%d denied=%d cache hits=%d misses=%d\n",
		allowed, denied, ffw.CacheHits, ffw.CacheMisses)
	for _, info := range sys.FlowTables() {
		perFlow := 0.0
		if info.Entries > 0 {
			perFlow = float64(info.MemBytes) / float64(info.Entries)
		}
		fmt.Printf("flow-scale: table %-10s entries=%d capacity=%d mem=%.1f MB (%.1f B/flow) evicted(idle=%d pressure=%d)\n",
			info.Name, info.Entries, info.Capacity, float64(info.MemBytes)/1024/1024,
			perFlow, info.EvictedIdle, info.EvictedPressure)
	}
	return nil
}
