// Failover example: deterministic fault injection, accelerator health and
// software-fallback recovery.
//
// A paced packet stream runs through the ipsec-crypto accelerator while a
// seeded fault plan injects transient DMA errors (masked by the bounded
// retry) and one persistent region SEU that garbles every response batch.
// The health FSM attributes the corrupt batches, quarantines the region
// and reloads its bitstream over ICAP (~29 ms for 5.6 MB). The example
// prints the goodput-over-time curve of three runs sharing one seed:
//
//   - baseline (no faults),
//   - the fault run without a fallback (goodput collapses until the
//     reload completes — the dip width is the MTTR),
//   - the fault run with a software ipsec module registered as the
//     quarantine fallback (goodput barely dips).
//
// Run with: go run ./examples/failover [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"github.com/opencloudnext/dhl-go/internal/harness"
)

func main() {
	seed := flag.Uint64("seed", 42, "fault-plan seed (same seed, same chaos)")
	flag.Parse()
	if err := run(*seed); err != nil {
		log.Fatal(err)
	}
}

func run(seed uint64) error {
	res, err := harness.RunFailover(harness.FailoverConfig{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("failure-recovery experiment (seed %d, baseline %.1f Mbps)\n\n",
		res.Seed, res.BaselineGoodBps/1e6)
	for _, r := range []*harness.FailoverRun{&res.Baseline, &res.NoFallback, &res.Fallback} {
		fmt.Printf("%-18s %s\n", r.Label, sparkline(r.Curve, res.BaselineGoodBps))
		mttr := "none"
		switch {
		case r.MTTRUs > 0:
			mttr = fmt.Sprintf("%.0f ms", r.MTTRUs/1000)
		case r.MTTRUs < 0:
			mttr = "not recovered"
		}
		fmt.Printf("%-18s outage %s | floor %.1f Mbps | recovered %.1f Mbps | ok/fallback/unprocessed %d/%d/%d\n",
			"", mttr, r.MinRateBps/1e6, r.RecoveredGoodBps/1e6,
			r.DeliveredOK, r.DeliveredFallback, r.DeliveredUnprocessed)
		fmt.Printf("%-18s health %s | faults %d | quarantines %d | reloads %d | dma retries %d\n\n",
			"", r.Health.Health, r.Health.Faults, r.Health.Quarantines, r.Health.Reloads,
			r.Stats.DMARetries)
	}
	fmt.Println("each column is 1 ms of goodput; the no-fallback dip is the ICAP reload")
	fmt.Println("of the 5.6 MB ipsec bitstream, the fallback run rides it out in software")
	return nil
}

// sparkline renders a goodput curve against the baseline mean.
func sparkline(curve []float64, baseline float64) string {
	levels := []rune(" ▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, r := range curve {
		frac := 0.0
		if baseline > 0 {
			frac = r / baseline
		}
		i := int(frac * float64(len(levels)-1))
		if i >= len(levels) {
			i = len(levels) - 1
		}
		if i < 0 {
			i = 0
		}
		b.WriteRune(levels[i])
	}
	return b.String()
}
