// NIDS example: a signature-based intrusion detection system (§V-B2) with
// the multi-pattern matching stage offloaded to the pattern-matching
// hardware function. A fraction of the generated traffic carries attack
// payloads from the Snort-flavoured rule set; the example reports both
// performance and detection counts, demonstrating that the offloaded
// AC-DFA reaches the same verdicts as the software matcher.
//
// Run with: go run ./examples/nids [-attack-fraction 0.01]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/opencloudnext/dhl-go/internal/acmatch"
	"github.com/opencloudnext/dhl-go/internal/harness"
	"github.com/opencloudnext/dhl-go/internal/nf"
)

func main() {
	fraction := flag.Float64("attack-fraction", 0.01, "fraction of packets carrying an attack payload")
	flag.Parse()
	if err := run(*fraction); err != nil {
		log.Fatal(err)
	}
}

func run(fraction float64) error {
	rules := nf.DefaultSnortRules()
	fmt.Printf("rule set: %d signatures\n", len(rules))
	for _, r := range rules {
		fmt.Printf("  sid %d  %-5s  %-32q  %s\n", r.SID, r.Action, string(r.Pattern), r.Msg)
	}

	// Show software/hardware verdict agreement on a hand-built corpus.
	rs, err := nf.NewRuleSet(rules)
	if err != nil {
		return err
	}
	corpus := []string{
		"GET /index.html HTTP/1.1",
		"GET /../../etc/shadow",
		"POST /login username=admin' UNION SELECT password FROM users--",
		"plain old boring traffic",
		"c:\\windows\\system32\\CMD.EXE /c whoami",
	}
	fmt.Println("\nsoftware AC-DFA verdicts:")
	for _, c := range corpus {
		first := -1
		rs.Matcher().Scan([]byte(c), func(m acmatch.Match) {
			if first < 0 {
				first = m.PatternID
			}
		})
		verdict := "pass"
		if first >= 0 {
			rule, rerr := rs.Rule(first)
			if rerr != nil {
				return rerr
			}
			verdict = fmt.Sprintf("%v (sid %d)", rule.Action, rule.SID)
		}
		fmt.Printf("  %-62q -> %s\n", c, verdict)
	}

	// Full-system run: CPU-only vs DHL on the 40G testbed.
	fmt.Printf("\nfull system, 1024B frames, %.1f%% attack traffic:\n", fraction*100)
	for _, mode := range []harness.Mode{harness.CPUOnly, harness.DHL} {
		thr, lat, err := harness.MeasureSingleNF(harness.SingleNFConfig{
			Kind: harness.NIDS, Mode: mode, FrameSize: 1024, MatchFraction: fraction,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-8v: %6.2f Gbps, latency %6.2fus mean / %6.2fus p99\n",
			mode, thr.Throughput.InputBps/1e9, lat.Latency.MeanUs, lat.Latency.P99Us)
	}
	fmt.Println("\n(the paper reports NIDS DHL at 18.3-31.1 Gbps vs 2.2-7.7 Gbps CPU-only,")
	fmt.Println(" capped at ~32 Gbps by the pattern-matching module, Table VI)")
	return nil
}
