// IPsec gateway example: the paper's headline workload (§V-B1, Figure 6).
//
// Runs the same IPsec gateway (AES-256-CTR + HMAC-SHA1) in both variants
// on the simulated 40G testbed — CPU-only (Intel-ipsec-mb model, 2 worker
// cores) and DHL (crypto offloaded to the ipsec-crypto hardware function)
// — and prints the Figure 6(a)/(b) comparison.
//
// Run with: go run ./examples/ipsec-gateway [-sizes 64,512,1500]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"github.com/opencloudnext/dhl-go/internal/harness"
)

func main() {
	sizes := flag.String("sizes", "64,256,1024,1500", "comma-separated frame sizes")
	flag.Parse()
	if err := run(*sizes); err != nil {
		log.Fatal(err)
	}
}

func run(sizeList string) error {
	var sizes []int
	for _, s := range strings.Split(sizeList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("bad size %q: %w", s, err)
		}
		sizes = append(sizes, v)
	}

	fmt.Println("IPsec gateway, 40G NIC, 4 CPU cores each (Table IV configuration)")
	fmt.Printf("%-8s | %-24s | %-24s | %s\n", "size", "CPU-only", "DHL", "speedup")
	fmt.Printf("%-8s | %10s %12s | %10s %12s |\n", "", "Gbps", "latency", "Gbps", "latency")
	for _, size := range sizes {
		cpuThr, cpuLat, err := harness.MeasureSingleNF(harness.SingleNFConfig{
			Kind: harness.IPsecGateway, Mode: harness.CPUOnly, FrameSize: size,
		})
		if err != nil {
			return err
		}
		dhlThr, dhlLat, err := harness.MeasureSingleNF(harness.SingleNFConfig{
			Kind: harness.IPsecGateway, Mode: harness.DHL, FrameSize: size,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-8d | %10.2f %10.1fus | %10.2f %10.1fus | %.1fx\n",
			size,
			cpuThr.Throughput.InputBps/1e9, cpuLat.Latency.MeanUs,
			dhlThr.Throughput.InputBps/1e9, dhlLat.Latency.MeanUs,
			dhlThr.Throughput.InputBps/cpuThr.Throughput.InputBps)
	}
	fmt.Println("\n(the paper reports 2.5->7.3 Gbps CPU-only vs 19.4->39.6 Gbps DHL, up to 7.7x)")
	return nil
}
