// Custom-module example: adding a self-built accelerator module to the
// accelerator module database (§IV-C: "DHL allows software developers to
// add their self-built accelerator modules ... as long as following the
// specified design specifications").
//
// The example implements a "flow-compression" hardware function (one of
// the accelerator types the paper lists alongside encryption and pattern
// matching), registers it with the runtime, loads it through partial
// reconfiguration, and round-trips packets through it.
//
// Run with: go run ./examples/custom-module
package main

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"log"
	"strings"

	dhl "github.com/opencloudnext/dhl-go"
	"github.com/opencloudnext/dhl-go/internal/dhlproto"
	"github.com/opencloudnext/dhl-go/internal/eventsim"
)

// compressModule is the self-built accelerator: it DEFLATE-compresses
// every record payload. A real deployment would provide the matching
// Verilog for a reconfigurable part; here the functional model plugs into
// the same Module interface the stock modules use.
type compressModule struct {
	level int
}

// Configure accepts a single-byte compression level (1..9).
func (c *compressModule) Configure(params []byte) error {
	if len(params) != 1 || params[0] < 1 || params[0] > 9 {
		return fmt.Errorf("compress: want a single level byte 1..9, got %v", params)
	}
	c.level = int(params[0])
	return nil
}

// ProcessBatch compresses each record, appending responses to dst.
func (c *compressModule) ProcessBatch(dst, in []byte) ([]byte, error) {
	if c.level == 0 {
		return dst, fmt.Errorf("compress: not configured")
	}
	err := dhlproto.Walk(in, func(rec dhlproto.Record) error {
		var buf bytes.Buffer
		w, werr := flate.NewWriter(&buf, c.level)
		if werr != nil {
			return werr
		}
		if _, werr := w.Write(rec.Payload); werr != nil {
			return werr
		}
		if werr := w.Close(); werr != nil {
			return werr
		}
		var aerr error
		dst, aerr = dhlproto.AppendRecord(dst, rec.NFID, rec.AccID, buf.Bytes())
		return aerr
	})
	return dst, err
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := dhl.Open(dhl.SystemConfig{})
	if err != nil {
		return err
	}

	// Register the self-built module in the accelerator module database.
	// Resource figures follow the base-design specification (a 256-bit
	// AXI4-stream datapath at 250 MHz) with a plausible footprint.
	spec := dhl.ModuleSpec{
		Name:           "flow-compression",
		LUTs:           14200,
		BRAM:           96,
		ThroughputBps:  25e9,
		DelayCycles:    180,
		BitstreamBytes: 4 * 1024 * 1024,
		New:            func() dhl.Module { return &compressModule{} },
	}
	if err := sys.RegisterModule(spec); err != nil {
		return err
	}

	nfID, err := sys.Register("compressing-nf", 0)
	if err != nil {
		return err
	}
	accID, err := sys.SearchByName("flow-compression", 0)
	if err != nil {
		return err
	}
	if err := sys.AccConfigure(accID, []byte{9}); err != nil {
		return err
	}
	sys.Settle()
	fmt.Println("hardware function table:")
	for _, row := range sys.HFTable() {
		fmt.Println(" ", row)
	}

	// Push highly compressible payloads through the hardware function.
	payload := []byte(strings.Repeat("redundancy elimination! ", 40))
	const nPkts = 4
	pkts := make([]*dhl.Packet, nPkts)
	for i := range pkts {
		m, aerr := sys.Pool().Alloc()
		if aerr != nil {
			return aerr
		}
		if aerr := m.AppendBytes(payload); aerr != nil {
			return errors.Join(aerr, sys.Pool().Free(m))
		}
		m.AccID = uint16(accID)
		pkts[i] = m
	}
	if _, err := sys.SendPackets(nfID, pkts); err != nil {
		return err
	}
	sys.Sim().Run(sys.Sim().Now() + 200*eventsim.Microsecond)

	out := make([]*dhl.Packet, nPkts)
	n, err := sys.ReceivePackets(nfID, out)
	if err != nil {
		return err
	}
	fmt.Printf("\n%d packets round-tripped through flow-compression:\n", n)
	for i := 0; i < n; i++ {
		comp := out[i].Data()
		r := flate.NewReader(bytes.NewReader(comp))
		plain, rerr := io.ReadAll(r)
		if rerr != nil {
			return fmt.Errorf("packet %d: decompress: %w", i, rerr)
		}
		if !bytes.Equal(plain, payload) {
			return fmt.Errorf("packet %d: payload mismatch after round trip", i)
		}
		fmt.Printf("  packet %d: %d B -> %d B (%.1f%% of original), decompression verified\n",
			i, len(payload), len(comp), 100*float64(len(comp))/float64(len(payload)))
		if perr := sys.Pool().Free(out[i]); perr != nil {
			return perr
		}
	}
	fmt.Println("\nself-built accelerator module integrated without touching the runtime")
	return nil
}
