package dhl_test

import (
	"bytes"
	"fmt"
	"log"

	dhl "github.com/opencloudnext/dhl-go"
	"github.com/opencloudnext/dhl-go/internal/eventsim"
)

// ExampleOpen_telemetry opens a telemetry-armed system, pushes one batch
// through the loopback accelerator, and reads the recording back through
// the Snapshot facade: per-core counters, per-stage histogram counts and
// the most recent batch trace span. The simulation is deterministic, so
// the printed numbers are too.
func ExampleOpen_telemetry() {
	sys, err := dhl.Open(dhl.SystemConfig{Telemetry: true})
	if err != nil {
		log.Fatal(err)
	}
	nf, err := sys.Register("example", 0)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := sys.SearchByName(dhl.Loopback, 0)
	if err != nil {
		log.Fatal(err)
	}
	sys.Settle() // wait out the partial-reconfiguration load

	pkts := make([]*dhl.Packet, 8)
	for i := range pkts {
		m, aerr := sys.Pool().Alloc()
		if aerr != nil {
			log.Fatal(aerr)
		}
		if aerr := m.AppendBytes(bytes.Repeat([]byte{byte(i)}, 64)); aerr != nil {
			log.Fatal(aerr)
		}
		m.AccID = uint16(acc)
		pkts[i] = m
	}
	if _, err := sys.SendPackets(nf, pkts); err != nil {
		log.Fatal(err)
	}
	sys.Sim().Run(sys.Sim().Now() + 300*eventsim.Microsecond)
	out := make([]*dhl.Packet, 16)
	got, err := sys.ReceivePackets(nf, out)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < got; i++ {
		_ = sys.Pool().Free(out[i])
	}

	snap := sys.Snapshot()
	fmt.Printf("batches=%d packets=%d\n",
		snap.CounterTotal(dhl.CounterBatches), snap.CounterTotal(dhl.CounterPackets))
	fmt.Printf("ibq_wait samples=%d accelerator samples=%d\n",
		snap.Stages[dhl.StageIBQWait].Count, snap.Stages[dhl.StageAccel].Count)
	sp := snap.Spans[len(snap.Spans)-1]
	fmt.Printf("span #%d: %d pkts, outcome %s\n", sp.Seq, sp.Packets, sp.Outcome)
	// Output:
	// batches=1 packets=8
	// ibq_wait samples=8 accelerator samples=1
	// span #1: 8 pkts, outcome ok
}
