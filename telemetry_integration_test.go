package dhl_test

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	dhl "github.com/opencloudnext/dhl-go"
	"github.com/opencloudnext/dhl-go/internal/eventsim"
	"github.com/opencloudnext/dhl-go/internal/hwfunc"
)

var update = flag.Bool("update", false, "rewrite golden files")

// telemetryWorkload drives a fixed, fully deterministic burst through a
// telemetry-armed System: 8 packets to the ipsec-crypto accelerator, one
// batch through the whole FPGA chain.
func telemetryWorkload(t *testing.T) *dhl.System {
	t.Helper()
	sys, err := dhl.Open(dhl.SystemConfig{Telemetry: true, TelemetrySpanCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	nf, err := sys.Register("telemetry-test", 0)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := sys.SearchByName(dhl.IPsecCrypto, 0)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := hwfunc.EncodeIPsecCryptoConfig(
		bytes.Repeat([]byte{0x42}, 32), bytes.Repeat([]byte{0x24}, 20), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AccConfigure(acc, blob); err != nil {
		t.Fatal(err)
	}
	sys.Settle()
	pkts := make([]*dhl.Packet, 8)
	for i := range pkts {
		m, aerr := sys.Pool().Alloc()
		if aerr != nil {
			t.Fatal(aerr)
		}
		// ipsec-crypto request records carry a 2-byte encryption-offset
		// prefix ahead of the frame.
		req, rerr := hwfunc.EncodeIPsecRequest(nil, bytes.Repeat([]byte{byte(i)}, 128), 0)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if aerr := m.AppendBytes(req); aerr != nil {
			t.Fatal(aerr)
		}
		m.AccID = uint16(acc)
		pkts[i] = m
	}
	if n, serr := sys.SendPackets(nf, pkts); serr != nil || n != len(pkts) {
		t.Fatalf("send %d %v", n, serr)
	}
	sys.Sim().Run(sys.Sim().Now() + 300*eventsim.Microsecond)
	out := make([]*dhl.Packet, 16)
	got, rerr := sys.ReceivePackets(nf, out)
	if rerr != nil || got != len(pkts) {
		t.Fatalf("receive %d %v", got, rerr)
	}
	for i := 0; i < got; i++ {
		_ = sys.Pool().Free(out[i])
	}
	return sys
}

// TestServeMetricsGolden scrapes the live HTTP endpoint after the fixed
// workload and compares the whole Prometheus exposition byte-for-byte
// against testdata/metrics.golden. The simulation is deterministic, so
// every histogram bucket, counter and gauge is too; the golden file pins
// the full exported surface, per-stage buckets and the health gauge
// included. Regenerate with: go test . -run ServeMetricsGolden -update
func TestServeMetricsGolden(t *testing.T) {
	sys := telemetryWorkload(t)
	exp, err := sys.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := exp.Close(); cerr != nil {
			t.Errorf("Close: %v", cerr)
		}
	}()
	resp, err := http.Get("http://" + exp.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content-type = %q", ct)
	}

	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if werr := os.WriteFile(golden, body, 0o644); werr != nil {
			t.Fatal(werr)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("scrape drifted from golden file (re-run with -update to accept):\n--- got ---\n%s", body)
	}

	// Belt and suspenders on the load-bearing families, so a stale golden
	// regeneration cannot silently drop them.
	for _, probe := range []string{
		`dhl_stage_latency_ns_bucket{stage="accelerator",le="+Inf"} 1`,
		`dhl_stage_latency_ns_count{stage="ibq_wait"} 8`,
		`dhl_acc_health{acc_id="1",hf="ipsec-crypto"} 1`,
		`dhl_core_batches_total{core="rx/0"} 1`,
		"dhl_dma_service_ns_bucket",
		"dhl_dispatch_service_ns_count 1",
		`dhl_health_transitions_total{to="quarantined"} 0`,
		"dhl_mbuf_in_use 0",
		"dhl_spans_total 1",
	} {
		if !strings.Contains(string(body), probe) {
			t.Errorf("scrape missing %q", probe)
		}
	}
}

// TestSystemSnapshotDelta exercises the facade Snapshot/Delta path and
// the telemetry-off behaviour.
func TestSystemSnapshotDelta(t *testing.T) {
	sys := telemetryWorkload(t)
	if sys.Telemetry() == nil {
		t.Fatal("Telemetry() nil with telemetry on")
	}
	before := sys.Snapshot()
	if before == nil || before.CounterTotal(dhl.CounterBatches) != 1 {
		t.Fatalf("snapshot: %+v", before)
	}
	if len(before.Spans) != 1 || before.Spans[0].Outcome != dhl.OutcomeOK {
		t.Fatalf("spans: %+v", before.Spans)
	}
	d := sys.Snapshot().Delta(before)
	if d.CounterTotal(dhl.CounterBatches) != 0 || len(d.Spans) != 0 {
		t.Errorf("idle delta shows activity: %+v", d)
	}

	off, err := dhl.Open(dhl.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if off.Telemetry() != nil || off.Snapshot() != nil {
		t.Error("telemetry-off system exposes a registry")
	}
	if _, err := off.ServeMetrics("127.0.0.1:0"); err == nil {
		t.Error("ServeMetrics succeeded with telemetry off")
	}
}
