package dhl_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	dhl "github.com/opencloudnext/dhl-go"
	"github.com/opencloudnext/dhl-go/internal/dhlproto"
	"github.com/opencloudnext/dhl-go/internal/eventsim"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := dhl.NewSystem(dhl.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Devices() != 1 {
		t.Errorf("devices %d", sys.Devices())
	}
	if _, err := sys.Device(0); err != nil {
		t.Errorf("device 0: %v", err)
	}
	if _, err := sys.Device(5); err == nil {
		t.Error("bad device index accepted")
	}
	if sys.Sim() == nil || sys.Pool() == nil || sys.Runtime() == nil {
		t.Error("accessors returned nil")
	}
	// Stock database registered.
	for _, name := range []string{dhl.IPsecCrypto, dhl.PatternMatching, dhl.Loopback} {
		if _, err := sys.SearchByName(name, 0); err != nil {
			t.Errorf("stock module %q: %v", name, err)
		}
	}
}

func TestSystemMultiNodeMultiFPGA(t *testing.T) {
	sys, err := dhl.NewSystem(dhl.SystemConfig{Nodes: 2, FPGAsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Devices() != 4 {
		t.Errorf("devices %d", sys.Devices())
	}
	// Each node resolves its own accelerator instance.
	a0, err := sys.SearchByName(dhl.IPsecCrypto, 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := sys.SearchByName(dhl.IPsecCrypto, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a0 == a1 {
		t.Error("nodes share one acc entry; hardware function table keys on (hf_name, socket_id)")
	}
	if _, err := sys.SharedIBQ(1); err != nil {
		t.Errorf("node 1 IBQ: %v", err)
	}
}

func TestSystemTableIIRoundTrip(t *testing.T) {
	sys, err := dhl.NewSystem(dhl.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	nfID, err := sys.Register("api-test", 0)
	if err != nil {
		t.Fatal(err)
	}
	accID, err := sys.SearchByName(dhl.Loopback, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AccConfigure(accID, nil); err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	if _, err := sys.SharedIBQ(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.PrivateOBQ(nfID); err != nil {
		t.Fatal(err)
	}

	pkts := make([]*dhl.Packet, 4)
	for i := range pkts {
		m, aerr := sys.Pool().Alloc()
		if aerr != nil {
			t.Fatal(aerr)
		}
		if aerr := m.AppendBytes([]byte{byte(i), 0xAB}); aerr != nil {
			t.Fatal(aerr)
		}
		m.AccID = uint16(accID)
		pkts[i] = m
	}
	n, err := sys.SendPackets(nfID, pkts)
	if err != nil || n != 4 {
		t.Fatalf("send %d %v", n, err)
	}
	sys.Sim().Run(sys.Sim().Now() + 100*eventsim.Microsecond)
	out := make([]*dhl.Packet, 8)
	got, err := sys.ReceivePackets(nfID, out)
	if err != nil || got != 4 {
		t.Fatalf("receive %d %v", got, err)
	}
	for i := 0; i < got; i++ {
		if !bytes.Equal(out[i].Data(), []byte{byte(i), 0xAB}) {
			t.Errorf("loopback pkt %d: %v", i, out[i].Data())
		}
		_ = sys.Pool().Free(out[i])
	}
	if err := sys.Unregister(nfID); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SendPackets(nfID, nil); err == nil {
		t.Error("send after unregister accepted")
	}
}

func TestSystemCustomModule(t *testing.T) {
	sys, err := dhl.NewSystem(dhl.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spec := dhl.ModuleSpec{
		Name: "xor-mask", LUTs: 2000, BRAM: 4, ThroughputBps: 40e9,
		DelayCycles: 8, BitstreamBytes: 1 << 20,
		New: func() dhl.Module { return &xorModule{} },
	}
	if err := sys.RegisterModule(spec); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterModule(spec); err == nil {
		t.Error("duplicate module registration accepted")
	}
	nfID, _ := sys.Register("xor-nf", 0)
	acc, err := sys.SearchByName("xor-mask", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AccConfigure(acc, []byte{0x5A}); err != nil {
		t.Fatal(err)
	}
	sys.Settle()
	m, _ := sys.Pool().Alloc()
	_ = m.AppendBytes([]byte{0x00, 0xFF})
	m.AccID = uint16(acc)
	if _, err := sys.SendPackets(nfID, []*dhl.Packet{m}); err != nil {
		t.Fatal(err)
	}
	sys.Sim().Run(sys.Sim().Now() + 100*eventsim.Microsecond)
	out := make([]*dhl.Packet, 1)
	if n, _ := sys.ReceivePackets(nfID, out); n != 1 {
		t.Fatal("no packet returned")
	}
	if !bytes.Equal(out[0].Data(), []byte{0x5A, 0xA5}) {
		t.Errorf("xor output %v", out[0].Data())
	}
	_ = sys.Pool().Free(out[0])
}

// xorModule is a trivial custom accelerator for API tests.
type xorModule struct{ mask byte }

func (x *xorModule) Configure(p []byte) error {
	if len(p) != 1 {
		return errors.New("xor: want 1 mask byte")
	}
	x.mask = p[0]
	return nil
}

func (x *xorModule) ProcessBatch(dst, in []byte) ([]byte, error) {
	err := dhlproto.Walk(in, func(r dhlproto.Record) error {
		p := make([]byte, len(r.Payload))
		for i, b := range r.Payload {
			p[i] = b ^ x.mask
		}
		var aerr error
		dst, aerr = dhlproto.AppendRecord(dst, r.NFID, r.AccID, p)
		return aerr
	})
	return dst, err
}

func TestSystemHFTable(t *testing.T) {
	sys, err := dhl.NewSystem(dhl.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.HFTable()) != 0 {
		t.Error("hf table not empty before loads")
	}
	if _, err := sys.LoadPR(dhl.PatternMatching, 0); err != nil {
		t.Fatal(err)
	}
	rows := sys.HFTable()
	if len(rows) != 1 || !strings.Contains(rows[0], dhl.PatternMatching) {
		t.Errorf("hf table %v", rows)
	}
}

// TestAutoTuneZeroAllocHotPath proves the PR's perf clause: with the
// adaptive batching autotuner armed and ticking on the event loop, a
// warm steady-state burst allocates nothing — the controller's only
// allocations happen at reconfiguration boundaries (first sight of an
// accelerator, an actual target change), which the warmup absorbs.
func TestAutoTuneZeroAllocHotPath(t *testing.T) {
	// One sampling window per traffic cycle below, so every window sees
	// the cycle's (low-fill) batch and the shrink streak can build.
	sys, err := dhl.Open(dhl.SystemConfig{},
		dhl.WithAutoTune(dhl.AutoTuneConfig{Interval: 2 * eventsim.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := sys.SearchByName(dhl.Loopback, 0)
	if err != nil {
		t.Fatal(err)
	}
	nf, err := sys.Register("autotune-hot", 0)
	if err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	// 4 packets of ~200 B stage a ~900 B batch against the 6 KB target:
	// fill stays far below the shrink threshold, so the controller must
	// adapt during warmup and then hold steady.
	const nPkts = 4
	req := bytes.Repeat([]byte{0x5A}, 200)
	pkts := make([]*dhl.Packet, nPkts)
	out := make([]*dhl.Packet, 2*nPkts)
	cycle := func() {
		for i := range pkts {
			m, aerr := sys.Pool().Alloc()
			if aerr != nil {
				t.Fatal(aerr)
			}
			if aerr := m.AppendBytes(req); aerr != nil {
				t.Fatal(aerr)
			}
			m.AccID = uint16(acc)
			pkts[i] = m
		}
		sent, _, serr := sys.TrySendPackets(nf, pkts)
		if serr != nil || sent != nPkts {
			t.Fatalf("send %d %v", sent, serr)
		}
		sys.Sim().Run(sys.Sim().Now() + 2*eventsim.Millisecond)
		got, rerr := sys.ReceivePackets(nf, out)
		if rerr != nil || got != nPkts {
			t.Fatalf("receive %d %v", got, rerr)
		}
		for i := 0; i < got; i++ {
			_ = sys.Pool().Free(out[i])
		}
	}
	warmup, measured := 50, 100
	if testing.Short() {
		warmup, measured = 25, 40
	}
	for i := 0; i < warmup; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(measured, cycle); avg != 0 {
		t.Errorf("steady-state burst with autotuner armed allocates %.1f objects/run, want 0", avg)
	}

	st := sys.AutoTuneStatus()
	if !st.Enabled || st.Windows == 0 {
		t.Fatalf("tuner not running: %+v", st)
	}
	// Tiny 16-packet bursts never fill a 6 KB batch, so the controller
	// must have adapted (shrink) at least once during warmup.
	if st.GrowDecisions+st.ShrinkDecisions == 0 {
		t.Error("autotuner made no decisions under sustained low-fill load")
	}
	if err := sys.AutoTuneDisable(); err != nil {
		t.Fatal(err)
	}
	if sys.AutoTuneStatus().Enabled {
		t.Error("still enabled after AutoTuneDisable")
	}
}

// TestBackpressureFacade exercises the facade's explicit back-pressure
// surface: RegisterPressure + TrySendPackets against a system whose IBQ
// is never drained (no Settle between sends), so a burst larger than
// the 256-slot default queue must be refused in part.
func TestBackpressureFacade(t *testing.T) {
	sys, err := dhl.Open(dhl.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	nf, err := sys.Register("bp", 0)
	if err != nil {
		t.Fatal(err)
	}
	var infos []dhl.PressureInfo
	if err := sys.RegisterPressure(nf, func(pi dhl.PressureInfo) { infos = append(infos, pi) }); err != nil {
		t.Fatal(err)
	}
	pkts := make([]*dhl.Packet, 300)
	for i := range pkts {
		m, aerr := sys.Pool().Alloc()
		if aerr != nil {
			t.Fatal(aerr)
		}
		if aerr := m.AppendBytes([]byte("x")); aerr != nil {
			t.Fatal(aerr)
		}
		pkts[i] = m
	}
	acc, pressured, err := sys.TrySendPackets(nf, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if acc >= len(pkts) || !pressured {
		t.Fatalf("255-slot IBQ accepted %d of 300, pressured=%v", acc, pressured)
	}
	if len(infos) == 0 {
		t.Fatal("no pressure callback for a refused burst")
	}
	for _, m := range pkts[acc:] { // caller keeps ownership of the tail
		if ferr := sys.Pool().Free(m); ferr != nil {
			t.Fatal(ferr)
		}
	}
}
