package dhl_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	dhl "github.com/opencloudnext/dhl-go"
	"github.com/opencloudnext/dhl-go/internal/dhlproto"
	"github.com/opencloudnext/dhl-go/internal/eventsim"
)

func TestNewSystemDefaults(t *testing.T) {
	sys, err := dhl.NewSystem(dhl.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Devices() != 1 {
		t.Errorf("devices %d", sys.Devices())
	}
	if _, err := sys.Device(0); err != nil {
		t.Errorf("device 0: %v", err)
	}
	if _, err := sys.Device(5); err == nil {
		t.Error("bad device index accepted")
	}
	if sys.Sim() == nil || sys.Pool() == nil || sys.Runtime() == nil {
		t.Error("accessors returned nil")
	}
	// Stock database registered.
	for _, name := range []string{dhl.IPsecCrypto, dhl.PatternMatching, dhl.Loopback} {
		if _, err := sys.SearchByName(name, 0); err != nil {
			t.Errorf("stock module %q: %v", name, err)
		}
	}
}

func TestSystemMultiNodeMultiFPGA(t *testing.T) {
	sys, err := dhl.NewSystem(dhl.SystemConfig{Nodes: 2, FPGAsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Devices() != 4 {
		t.Errorf("devices %d", sys.Devices())
	}
	// Each node resolves its own accelerator instance.
	a0, err := sys.SearchByName(dhl.IPsecCrypto, 0)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := sys.SearchByName(dhl.IPsecCrypto, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a0 == a1 {
		t.Error("nodes share one acc entry; hardware function table keys on (hf_name, socket_id)")
	}
	if _, err := sys.SharedIBQ(1); err != nil {
		t.Errorf("node 1 IBQ: %v", err)
	}
}

func TestSystemTableIIRoundTrip(t *testing.T) {
	sys, err := dhl.NewSystem(dhl.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	nfID, err := sys.Register("api-test", 0)
	if err != nil {
		t.Fatal(err)
	}
	accID, err := sys.SearchByName(dhl.Loopback, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AccConfigure(accID, nil); err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	if _, err := sys.SharedIBQ(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.PrivateOBQ(nfID); err != nil {
		t.Fatal(err)
	}

	pkts := make([]*dhl.Packet, 4)
	for i := range pkts {
		m, aerr := sys.Pool().Alloc()
		if aerr != nil {
			t.Fatal(aerr)
		}
		if aerr := m.AppendBytes([]byte{byte(i), 0xAB}); aerr != nil {
			t.Fatal(aerr)
		}
		m.AccID = uint16(accID)
		pkts[i] = m
	}
	n, err := sys.SendPackets(nfID, pkts)
	if err != nil || n != 4 {
		t.Fatalf("send %d %v", n, err)
	}
	sys.Sim().Run(sys.Sim().Now() + 100*eventsim.Microsecond)
	out := make([]*dhl.Packet, 8)
	got, err := sys.ReceivePackets(nfID, out)
	if err != nil || got != 4 {
		t.Fatalf("receive %d %v", got, err)
	}
	for i := 0; i < got; i++ {
		if !bytes.Equal(out[i].Data(), []byte{byte(i), 0xAB}) {
			t.Errorf("loopback pkt %d: %v", i, out[i].Data())
		}
		_ = sys.Pool().Free(out[i])
	}
	if err := sys.Unregister(nfID); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SendPackets(nfID, nil); err == nil {
		t.Error("send after unregister accepted")
	}
}

func TestSystemCustomModule(t *testing.T) {
	sys, err := dhl.NewSystem(dhl.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spec := dhl.ModuleSpec{
		Name: "xor-mask", LUTs: 2000, BRAM: 4, ThroughputBps: 40e9,
		DelayCycles: 8, BitstreamBytes: 1 << 20,
		New: func() dhl.Module { return &xorModule{} },
	}
	if err := sys.RegisterModule(spec); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterModule(spec); err == nil {
		t.Error("duplicate module registration accepted")
	}
	nfID, _ := sys.Register("xor-nf", 0)
	acc, err := sys.SearchByName("xor-mask", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AccConfigure(acc, []byte{0x5A}); err != nil {
		t.Fatal(err)
	}
	sys.Settle()
	m, _ := sys.Pool().Alloc()
	_ = m.AppendBytes([]byte{0x00, 0xFF})
	m.AccID = uint16(acc)
	if _, err := sys.SendPackets(nfID, []*dhl.Packet{m}); err != nil {
		t.Fatal(err)
	}
	sys.Sim().Run(sys.Sim().Now() + 100*eventsim.Microsecond)
	out := make([]*dhl.Packet, 1)
	if n, _ := sys.ReceivePackets(nfID, out); n != 1 {
		t.Fatal("no packet returned")
	}
	if !bytes.Equal(out[0].Data(), []byte{0x5A, 0xA5}) {
		t.Errorf("xor output %v", out[0].Data())
	}
	_ = sys.Pool().Free(out[0])
}

// xorModule is a trivial custom accelerator for API tests.
type xorModule struct{ mask byte }

func (x *xorModule) Configure(p []byte) error {
	if len(p) != 1 {
		return errors.New("xor: want 1 mask byte")
	}
	x.mask = p[0]
	return nil
}

func (x *xorModule) ProcessBatch(dst, in []byte) ([]byte, error) {
	err := dhlproto.Walk(in, func(r dhlproto.Record) error {
		p := make([]byte, len(r.Payload))
		for i, b := range r.Payload {
			p[i] = b ^ x.mask
		}
		var aerr error
		dst, aerr = dhlproto.AppendRecord(dst, r.NFID, r.AccID, p)
		return aerr
	})
	return dst, err
}

func TestSystemHFTable(t *testing.T) {
	sys, err := dhl.NewSystem(dhl.SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.HFTable()) != 0 {
		t.Error("hf table not empty before loads")
	}
	if _, err := sys.LoadPR(dhl.PatternMatching, 0); err != nil {
		t.Fatal(err)
	}
	rows := sys.HFTable()
	if len(rows) != 1 || !strings.Contains(rows[0], dhl.PatternMatching) {
		t.Errorf("hf table %v", rows)
	}
}
