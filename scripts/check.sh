#!/usr/bin/env bash
# check.sh — the repo's CI gate, runnable locally.
#
# Order is cheapest-first so the most common failures surface fastest:
# formatting, then vet, then dhl-lint (the DHL-specific invariants), then
# the build, then the race-clean short test suite, then a full (un-short)
# race pass over the two lock-free packages whose bugs only show up under
# the race detector.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needs to be run on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet"
go vet ./...

echo "==> dhl-lint (full suite, JSON artifact in lint-report.json)"
go run ./cmd/dhl-lint -format json ./... > lint-report.json || {
    status=$?
    cat lint-report.json >&2
    exit "$status"
}

echo "==> dhl-lint self-lint (internal/lint + cmd/dhl-lint)"
go run ./cmd/dhl-lint ./internal/lint ./cmd/dhl-lint

echo "==> go build"
go build ./...

echo "==> go test -race -short"
go test -race -short -count=1 ./...

echo "==> go test -race (full) internal/ring internal/mbuf"
go test -race -count=1 ./internal/ring ./internal/mbuf

echo "==> bench smoke (1 iteration, -benchmem)"
go test -run '^$' -bench 'Pipeline|Distributor' -benchmem -benchtime=1x -count=1 ./internal/core

echo "==> chaos smoke (seeded fault-injection soak, -short)"
go test -run Chaos -short -count=1 ./internal/core ./internal/harness

echo "==> telemetry smoke (stage clock, zero-alloc budget, exporter golden)"
go test -run 'Telemetry|ServeMetricsGolden|WritePrometheus' -count=1 \
    ./internal/core ./internal/telemetry .

echo "OK"
