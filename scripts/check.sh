#!/usr/bin/env bash
# check.sh — the repo's CI gate, runnable locally.
#
# Order is cheapest-first so the most common failures surface fastest:
# formatting, then vet, then dhl-lint (the DHL-specific invariants), then
# the build, then the race-clean short test suite, then a full (un-short)
# race pass over the two lock-free packages whose bugs only show up under
# the race detector.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needs to be run on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> docscheck (README/DESIGN/EXPERIMENTS cross-references)"
./scripts/docscheck.sh

echo "==> go vet"
go vet ./...

echo "==> dhl-lint (full suite, JSON artifact in lint-report.json)"
go run ./cmd/dhl-lint -format json ./... > lint-report.json || {
    status=$?
    cat lint-report.json >&2
    exit "$status"
}

echo "==> dhl-lint self-lint (internal/lint + cmd/dhl-lint)"
go run ./cmd/dhl-lint ./internal/lint ./cmd/dhl-lint

echo "==> go build"
go build ./...

echo "==> go test -race -short"
go test -race -short -count=1 ./...

echo "==> go test -race (full) internal/ring internal/mbuf"
go test -race -count=1 ./internal/ring ./internal/mbuf

echo "==> bench smoke (1 iteration, -benchmem)"
go test -run '^$' -bench 'Pipeline|Distributor' -benchmem -benchtime=1x -count=1 ./internal/core

echo "==> chaos smoke (seeded fault-injection soak, -short)"
go test -run Chaos -short -count=1 ./internal/core ./internal/harness

echo "==> flow-scale smoke (100k-flow Zipf churn soak + failover flow-state audit, -short, -race)"
go test -race -short -run 'FlowScale|FlowState' -count=1 ./internal/harness

echo "==> board-failover smoke (whole-board loss: replica promotion + live migration, -race)"
go test -race -short -run 'BoardFailover' -count=1 ./internal/harness

echo "==> migration zero-leak gate (live migration under traffic: ledger balanced, 0 mbufs leaked)"
go test -race -run 'MigrationZeroLeak|MigrateLive|ReplicaPromotion' -count=1 ./internal/core

echo "==> flow-table zero-alloc gate (hit path, churn, NAT translate: 0 allocs/op)"
go test -run 'ZeroAlloc' -count=1 ./internal/flowtab ./internal/nf

echo "==> autotuner smoke (control law, backpressure edges, zero-alloc with tuner armed)"
go test -short -run 'Tuner|AutoTune|Pressure|CopySince' -count=1 \
    ./internal/tuner ./internal/core ./internal/telemetry .

echo "==> telemetry smoke (stage clock, zero-alloc budget, exporter golden)"
go test -run 'Telemetry|ServeMetricsGolden|WritePrometheus' -count=1 \
    ./internal/core ./internal/telemetry .

echo "==> control-plane smoke (serve, manage via dhl-inspect, scrape, shutdown)"
smoke_dir=$(mktemp -d)
serve_pid=""
cleanup() {
    [[ -n "$serve_pid" ]] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$smoke_dir"
}
trap cleanup EXIT
go build -o "$smoke_dir/dhl-inspect" ./cmd/dhl-inspect
port=$((21000 + RANDOM % 9000))
"$smoke_dir/dhl-inspect" -serve "127.0.0.1:$port" -modules ipsec-crypto -boards 2 \
    > "$smoke_dir/serve.log" 2>&1 &
serve_pid=$!
up=""
for _ in $(seq 1 50); do
    if "$smoke_dir/dhl-inspect" -addr "127.0.0.1:$port" -cmd sys.ping >/dev/null 2>&1; then
        up=1
        break
    fi
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "serve-mode dhl-inspect died:" >&2
        cat "$smoke_dir/serve.log" >&2
        exit 1
    fi
    sleep 0.2
done
if [[ -z "$up" ]]; then
    echo "control plane never answered sys.ping" >&2
    cat "$smoke_dir/serve.log" >&2
    exit 1
fi
"$smoke_dir/dhl-inspect" -addr "127.0.0.1:$port" -cmd acc.load -args loopback,0 >/dev/null
"$smoke_dir/dhl-inspect" -addr "127.0.0.1:$port" -cmd tune.batch -args 2048 >/dev/null
# Autotuner round-trip: enable, confirm the status reports it running,
# disable again so the fixed tune.batch target above stays in force.
"$smoke_dir/dhl-inspect" -addr "127.0.0.1:$port" -cmd tune.auto -args on > "$smoke_dir/tune.txt"
grep -q '"enabled": true' "$smoke_dir/tune.txt" || {
    echo "tune.auto on did not report an enabled controller" >&2
    cat "$smoke_dir/tune.txt" >&2
    exit 1
}
"$smoke_dir/dhl-inspect" -addr "127.0.0.1:$port" -cmd tune.auto -args off > "$smoke_dir/tune.txt"
grep -q '"enabled": false' "$smoke_dir/tune.txt" || {
    echo "tune.auto off left the controller enabled" >&2
    cat "$smoke_dir/tune.txt" >&2
    exit 1
}
# Fleet surface: replicate the live accelerator onto the second board and
# confirm the placement table reports both endpoints.
"$smoke_dir/dhl-inspect" -addr "127.0.0.1:$port" -cmd acc.replicate -args 1 >/dev/null
"$smoke_dir/dhl-inspect" -addr "127.0.0.1:$port" -cmd placement.get > "$smoke_dir/placement.txt"
grep -q '"board": 1' "$smoke_dir/placement.txt" || {
    echo "placement.get is missing the second board after acc.replicate" >&2
    cat "$smoke_dir/placement.txt" >&2
    exit 1
}
# Capture-then-grep: piping straight into grep -q makes the producer
# take a SIGPIPE/EPIPE when grep exits at the first match, which
# pipefail then reports as a failure (curl exit 23).
"$smoke_dir/dhl-inspect" -addr "127.0.0.1:$port" > "$smoke_dir/overview.txt"
grep -q 'loopback' "$smoke_dir/overview.txt" || {
    echo "overview is missing the live-loaded accelerator" >&2
    cat "$smoke_dir/overview.txt" >&2
    exit 1
}
if command -v curl >/dev/null; then
    curl -fsS "http://127.0.0.1:$port/metrics" > "$smoke_dir/metrics.txt"
    grep -q dhl_stage_latency_ns "$smoke_dir/metrics.txt" || {
        echo "/metrics scrape lost the stage histograms" >&2
        exit 1
    }
else
    echo "(curl not found; skipping the /metrics scrape)"
fi
"$smoke_dir/dhl-inspect" -addr "127.0.0.1:$port" -cmd sys.shutdown >/dev/null
wait "$serve_pid"
serve_pid=""

echo "OK"
