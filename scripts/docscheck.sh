#!/usr/bin/env bash
# docscheck.sh — cross-reference gate for the operator docs.
#
# The docs use three link-ish conventions that silently rot as the repo
# grows; this script turns each into a CI failure:
#
#   1. `§N` (digits) refers to a `## N.` section heading in DESIGN.md.
#      Roman-numeral refs like §VI.1 point into the source paper and are
#      out of scope.
#   2. `EXPERIMENTS.md <ID>` (ID = E1/A2/T5...) refers to a `## <ID> —`
#      experiment heading in EXPERIMENTS.md.
#   3. Backtick-quoted repo paths (`internal/...`, `cmd/...`,
#      `scripts/...`, or anything ending in .md/.go/.sh) must exist.
set -euo pipefail
cd "$(dirname "$0")/.."

docs=(README.md DESIGN.md EXPERIMENTS.md)
fail=0

# --- 1. §N section refs against DESIGN.md headings -----------------------
sections=$(grep -oE '^## [0-9]+\.' DESIGN.md | grep -oE '[0-9]+')
for doc in "${docs[@]}"; do
    while IFS=: read -r line ref; do
        [[ -n "$ref" ]] || continue
        n=${ref#§}
        if ! grep -qx "$n" <<<"$sections"; then
            echo "$doc:$line: §$n does not match any '## $n.' heading in DESIGN.md" >&2
            fail=1
        fi
    done < <(grep -noE '§[0-9]+' "$doc" || true)
done

# --- 2. experiment IDs against EXPERIMENTS.md headings -------------------
experiments=$(grep -oE '^## [EAT][0-9]+(/[EAT][0-9]+)* ' EXPERIMENTS.md \
    | grep -oE '[EAT][0-9]+')
for doc in "${docs[@]}"; do
    while IFS=: read -r line ref; do
        id=$(grep -oE '[EAT][0-9]+$' <<<"$ref")
        if ! grep -qx "$id" <<<"$experiments"; then
            echo "$doc:$line: $ref does not match any '## $id —' heading in EXPERIMENTS.md" >&2
            fail=1
        fi
    done < <(grep -noE 'EXPERIMENTS\.md [EAT][0-9]+' "$doc" || true)
done

# --- 3. backticked repo paths exist --------------------------------------
# Only tokens that are unambiguously paths: a known top-level directory
# prefix, or a bare filename with a source/doc extension. Commands, flags
# and globs (anything with spaces, '*' or '$') never match the pattern.
for doc in "${docs[@]}"; do
    while IFS=: read -r line path; do
        p=${path#\`}
        p=${p%\`}
        p=${p#./}
        if [[ ! -e "$p" ]]; then
            echo "$doc:$line: referenced path $p does not exist" >&2
            fail=1
        fi
    done < <(grep -noE '`\.?/?(internal|cmd|scripts)/[A-Za-z0-9_/.-]+`|`[A-Za-z0-9_.-]+\.(md|go|sh)`' "$doc" || true)
done

if [[ "$fail" -ne 0 ]]; then
    echo "docscheck: stale cross-references found" >&2
    exit 1
fi
echo "docscheck: OK (${#docs[@]} docs, $(wc -l <<<"$sections") DESIGN sections, $(wc -l <<<"$experiments") experiments)"
