#!/usr/bin/env bash
# bench.sh — the allocation-budget benchmark gate.
#
# Four passes, cheapest-smoke first:
#   1. every benchmark in the repo once (-benchtime=1x) with -benchmem, so
#      a benchmark that panics or b.Fatals fails the gate fast;
#   2. the cmd/dhl-bench harness as an end-to-end smoke;
#   3. the million-flow stateful-NF sweep (flows vs goodput, bytes/flow)
#      emitting BENCH_pr8.json;
#   4. the data-path pair (Packer->...->Distributor pipeline + Distributor
#      in isolation) at a measuring benchtime, emitting BENCH_pr3.json:
#      ns/op, B/op and allocs/op next to the pre-arena baseline recorded
#      when the pooled batch pipeline landed, so a regression that
#      reintroduces per-batch heap traffic shows up as a diff in a
#      reviewed file.
#
# Usage: scripts/bench.sh [benchtime]   (default 100x for pass 3)
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-100x}"
out="BENCH_pr3.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "==> go test -bench . -benchmem -benchtime=1x (all packages, smoke)"
go test -run '^$' -bench . -benchmem -benchtime=1x -count=1 ./...

echo "==> cmd/dhl-bench smoke (table1)"
go run ./cmd/dhl-bench table1 >/dev/null

echo "==> flow-scale sweep (stateful firewall, 10k..2M flows) -> BENCH_pr8.json"
go run ./cmd/dhl-bench -quick -json flowscale > BENCH_pr8.json

echo "==> go test -bench 'Pipeline|Distributor' -benchmem -benchtime=$benchtime ./internal/core"
go test -run '^$' -bench 'Pipeline|Distributor' -benchmem -benchtime="$benchtime" -count=1 ./internal/core | tee "$raw"

echo "==> writing $out"
awk -v benchtime="$benchtime" '
BEGIN {
    n = 0
}
/^Benchmark/ && NF >= 3 {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = ""; bop = ""; aop = ""
    for (i = 3; i <= NF; i++) {
        if ($(i) == "ns/op")     ns  = $(i-1)
        if ($(i) == "B/op")      bop = $(i-1)
        if ($(i) == "allocs/op") aop = $(i-1)
    }
    if (ns != "") {
        names[n] = name; nss[n] = ns; bops[n] = bop; aops[n] = aop; n++
    }
}
END {
    print "{"
    print "  \"pr\": 3,"
    print "  \"benchtime\": \"" benchtime "\","
    print "  \"baseline\": {"
    print "    \"note\": \"pre-arena numbers (benchtime=100x), before the pooled batch pipeline\","
    print "    \"BenchmarkPipeline64B\": {\"ns_op\": 1358724, \"B_op\": 517462, \"allocs_op\": 20989},"
    print "    \"BenchmarkPipeline1500B\": {\"ns_op\": 1346836, \"B_op\": 670794, \"allocs_op\": 20955},"
    print "    \"BenchmarkDistributor\": {\"ns_op\": 2219, \"B_op\": 0, \"allocs_op\": 0}"
    print "  },"
    print "  \"current\": {"
    for (i = 0; i < n; i++) {
        line = "    \"" names[i] "\": {\"ns_op\": " nss[i]
        if (bops[i] != "") line = line ", \"B_op\": " bops[i]
        if (aops[i] != "") line = line ", \"allocs_op\": " aops[i]
        line = line "}"
        if (i < n-1) line = line ","
        print line
    }
    print "  }"
    print "}"
}' "$raw" > "$out"

echo "OK: $out"
