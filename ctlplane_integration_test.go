package dhl_test

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	dhl "github.com/opencloudnext/dhl-go"
	"github.com/opencloudnext/dhl-go/internal/ctlplane"
	"github.com/opencloudnext/dhl-go/internal/eth"
	"github.com/opencloudnext/dhl-go/internal/eventsim"
	"github.com/opencloudnext/dhl-go/internal/hwfunc"
	"github.com/opencloudnext/dhl-go/internal/nf"
)

// pumper owns ALL simulation interaction for a live-system test: it
// drives Sim().Run continuously (which drains the Post mailbox the
// control plane relies on) and executes do() closures on the simulation
// goroutine. HTTP client goroutines only ever do RPCs.
type pumper struct {
	sys  *dhl.System
	cmds chan func()
	stop chan struct{}
	wg   sync.WaitGroup
}

func startPumper(sys *dhl.System) *pumper {
	p := &pumper{sys: sys, cmds: make(chan func()), stop: make(chan struct{})}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for {
			select {
			case <-p.stop:
				return
			case fn := <-p.cmds:
				fn()
			default:
				p.sys.Sim().Run(p.sys.Sim().Now() + 100*eventsim.Microsecond)
				// Yield real time so RPC goroutines get scheduled promptly
				// without this loop monopolizing a core.
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	return p
}

// do runs fn on the pumper goroutine, serialized with the simulation,
// and waits for it.
func (p *pumper) do(fn func()) {
	done := make(chan struct{})
	p.cmds <- func() { fn(); close(done) }
	<-done
}

func (p *pumper) shutdown() {
	close(p.stop)
	p.wg.Wait()
}

// ipsecBlob builds the acc.configure payload used by the live tests.
func ipsecBlob(t *testing.T) []byte {
	t.Helper()
	blob, err := hwfunc.EncodeIPsecCryptoConfig(
		bytes.Repeat([]byte{0x42}, 32), bytes.Repeat([]byte{0x24}, 20), 1)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// sendRound pushes n ipsec request packets of payloadLen bytes through
// the pipeline and frees the responses. Must run on the pumper
// goroutine (inside do).
func sendRound(t *testing.T, sys *dhl.System, nf dhl.NFID, acc dhl.AccID, n, payloadLen int) {
	t.Helper()
	pkts := make([]*dhl.Packet, n)
	payload := bytes.Repeat([]byte{0x5A}, payloadLen)
	for i := range pkts {
		m, err := sys.Pool().Alloc()
		if err != nil {
			t.Fatal(err)
		}
		req, err := hwfunc.EncodeIPsecRequest(nil, payload, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AppendBytes(req); err != nil {
			t.Fatal(err)
		}
		m.AccID = uint16(acc)
		pkts[i] = m
	}
	if sent, err := sys.SendPackets(nf, pkts); err != nil || sent != n {
		t.Fatalf("send %d err %v", sent, err)
	}
	sys.Sim().Run(sys.Sim().Now() + 2*eventsim.Millisecond)
	out := make([]*dhl.Packet, 2*n)
	got, err := sys.ReceivePackets(nf, out)
	if err != nil || got != n {
		t.Fatalf("receive %d err %v", got, err)
	}
	for i := 0; i < got; i++ {
		_ = sys.Pool().Free(out[i])
	}
}

// TestControlPlaneLiveReconfig is the tentpole acceptance test: a live
// system accepts nf.register, acc.load, acc.configure, fallback.set and
// tune.batch over /api/v1 with traffic flowing, and a mid-run batch-size
// change shows up in the per-stage histograms (more, smaller batches
// through the pack stage) and in the telemetry.delta span stream.
func TestControlPlaneLiveReconfig(t *testing.T) {
	sys, err := dhl.Open(dhl.SystemConfig{}, dhl.WithControlPlane())
	if err != nil {
		t.Fatal(err)
	}
	exp, err := sys.Serve("127.0.0.1:0", dhl.WithCallTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := exp.Close(); cerr != nil {
			t.Errorf("Close: %v", cerr)
		}
	}()
	p := startPumper(sys)
	defer p.shutdown()

	c := dhl.DialControl(exp.Addr())
	defer func() { _ = c.Close() }()
	if err := c.Call("sys.ping", nil, nil); err != nil {
		t.Fatal(err)
	}

	// Bring the data path up entirely over the API.
	var reg struct {
		NFID dhl.NFID `json:"nf_id"`
	}
	if err := c.Call("nf.register", map[string]any{"name": "live-nf", "node": 0}, &reg); err != nil {
		t.Fatal(err)
	}
	var load struct {
		AccID dhl.AccID `json:"acc_id"`
	}
	if err := c.Call("acc.load", map[string]any{"hf": dhl.IPsecCrypto, "node": 0}, &load); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("acc.configure", map[string]any{"acc_id": load.AccID, "params": ipsecBlob(t)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("fallback.set", map[string]any{"hf": dhl.IPsecCrypto, "node": 0}, nil); err != nil {
		t.Fatal(err)
	}
	p.do(sys.Settle)

	var info struct {
		BatchBytes   int `json:"batch_bytes"`
		Accelerators []struct {
			AccID dhl.AccID `json:"acc_id"`
			HF    string    `json:"hf"`
			Ready bool      `json:"ready"`
		} `json:"accelerators"`
	}
	if err := c.Call("sys.info", nil, &info); err != nil {
		t.Fatal(err)
	}
	if info.BatchBytes != 6144 || len(info.Accelerators) != 1 || !info.Accelerators[0].Ready {
		t.Fatalf("sys.info %+v", info)
	}

	// Baseline the delta stream, then run traffic at 6 KB batches.
	var d struct {
		Active bool                   `json:"active"`
		Delta  *dhl.TelemetrySnapshot `json:"delta"`
	}
	if err := c.Call("telemetry.delta", map[string]any{"stream": "reconfig"}, &d); err != nil {
		t.Fatal(err)
	}
	const rounds, pktsPerRound, payloadLen = 4, 16, 512
	for i := 0; i < rounds; i++ {
		p.do(func() { sendRound(t, sys, reg.NFID, load.AccID, pktsPerRound, payloadLen) })
	}
	if err := c.Call("telemetry.delta", map[string]any{"stream": "reconfig", "wait_ms": 5000}, &d); err != nil {
		t.Fatal(err)
	}
	if !d.Active {
		t.Fatal("no activity after traffic")
	}
	before := d.Delta.Stages[dhl.StagePack].Count
	// 16 x ~530 B per round against a 6 KB target: at most 2 batches/round.
	if before == 0 || before > uint64(2*rounds) {
		t.Fatalf("6KB pack count = %d", before)
	}
	var maxSpan uint32
	for _, sp := range d.Delta.Spans {
		if sp.Bytes > maxSpan {
			maxSpan = sp.Bytes
		}
	}
	if maxSpan < 4096 {
		t.Fatalf("6KB-era spans top out at %d bytes", maxSpan)
	}

	// Retarget the batch size live, mid-run, over the API ...
	var tuned struct {
		BatchBytes int `json:"batch_bytes"`
	}
	if err := c.Call("tune.batch", map[string]any{"bytes": 1024}, &tuned); err != nil {
		t.Fatal(err)
	}
	if tuned.BatchBytes != 1024 {
		t.Fatalf("tune.batch applied %d", tuned.BatchBytes)
	}

	// ... and the same traffic now flows as many small batches: the pack
	// stage histogram grows much faster and every new span fits 1 KB.
	for i := 0; i < rounds; i++ {
		p.do(func() { sendRound(t, sys, reg.NFID, load.AccID, pktsPerRound, payloadLen) })
	}
	if err := c.Call("telemetry.delta", map[string]any{"stream": "reconfig", "wait_ms": 5000}, &d); err != nil {
		t.Fatal(err)
	}
	after := d.Delta.Stages[dhl.StagePack].Count
	// 16 x ~530 B per round at a 1 KB target is at least 8 batches/round.
	if after < uint64(8*rounds) {
		t.Fatalf("1KB pack count = %d, want >= %d", after, 8*rounds)
	}
	if len(d.Delta.Spans) == 0 {
		t.Fatal("no spans in post-tune delta")
	}
	for _, sp := range d.Delta.Spans {
		if sp.Bytes > 1024 {
			t.Fatalf("post-tune span of %d bytes exceeds the 1 KB target", sp.Bytes)
		}
	}

	// The Prometheus scrape rides the same listener, unchanged.
	resp, err := http.Get("http://" + exp.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dhl_stage_latency_ns_count") {
		t.Error("/metrics scrape lost the stage histograms")
	}
}

// TestServeControlPlaneGating: /api/v1 exists only on WithControlPlane
// systems; plain telemetry systems keep the metrics-only surface.
func TestServeControlPlaneGating(t *testing.T) {
	plain, err := dhl.Open(dhl.SystemConfig{Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := plain.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = exp.Close() }()
	resp, err := http.Get("http://" + exp.Addr() + "/api/v1")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("plain system serves /api/v1: %d", resp.StatusCode)
	}

	armed, err := dhl.Open(dhl.SystemConfig{}, dhl.WithControlPlane())
	if err != nil {
		t.Fatal(err)
	}
	exp2, err := armed.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = exp2.Close() }()
	resp, err = http.Get("http://" + exp2.Addr() + "/api/v1")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("armed system GET /api/v1: %d", resp.StatusCode)
	}
	// Without a pumper the loop is idle: management calls must fail fast
	// with the loop-idle code instead of hanging.
	exp3, err := armed.Serve("127.0.0.1:0", dhl.WithCallTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = exp3.Close() }()
	c := dhl.DialControl(exp3.Addr())
	defer func() { _ = c.Close() }()
	var rerr *dhl.ControlError
	if err := c.Call("sys.info", nil, nil); !errors.As(err, &rerr) || rerr.Code != ctlplane.CodeLoopIdle {
		t.Errorf("idle-loop call: %v", err)
	}
}

// TestControlPlaneConcurrentChaos hammers the management API from
// several goroutines — register/unregister churn, acc.load/acc.evict
// cycles, live tune.batch/tune.watchdog flips, fallback set/clear,
// health and stats reads — while chaos-injected traffic flows, then
// checks the conservation ledger still balances and nothing leaked.
// Run under -race this also proves control ops never touch simulation
// state off the event loop.
func TestControlPlaneConcurrentChaos(t *testing.T) {
	plan, err := dhl.NewFaultPlan(42,
		dhl.FaultSpec{Kind: dhl.FaultModuleError, EveryN: 7},
		dhl.FaultSpec{Kind: dhl.FaultDMAH2CError, EveryN: 11},
		dhl.FaultSpec{Kind: dhl.FaultDMAC2HCorrupt, EveryN: 13},
	)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := dhl.Open(dhl.SystemConfig{WatchdogTimeoutUs: 250}, dhl.WithControlPlane(), dhl.WithFaultPlan(plan))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := sys.Serve("127.0.0.1:0", dhl.WithCallTimeout(15*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = exp.Close() }()

	// The anchor NF and accelerator carry traffic for the whole run; the
	// mutator goroutines churn everything else around them.
	nf, err := sys.Register("anchor", 0)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := sys.SearchByName(dhl.IPsecCrypto, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AccConfigure(acc, ipsecBlob(t)); err != nil {
		t.Fatal(err)
	}
	sys.Settle()

	// Traffic pumper: bursts against the anchor accelerator, freeing
	// whatever comes back (chaos drops some packets by design).
	var stopTraffic atomic.Bool
	var pumpWG sync.WaitGroup
	payload := bytes.Repeat([]byte{0x33}, 400)
	pumpWG.Add(1)
	go func() {
		defer pumpWG.Done()
		out := make([]*dhl.Packet, 64)
		for !stopTraffic.Load() {
			pkts := make([]*dhl.Packet, 0, 8)
			for i := 0; i < 8; i++ {
				m, aerr := sys.Pool().Alloc()
				if aerr != nil {
					break
				}
				req, rerr := hwfunc.EncodeIPsecRequest(nil, payload, 0)
				if rerr != nil {
					_ = sys.Pool().Free(m)
					break
				}
				if aerr := m.AppendBytes(req); aerr != nil {
					_ = sys.Pool().Free(m)
					break
				}
				m.AccID = uint16(acc)
				pkts = append(pkts, m)
			}
			if len(pkts) > 0 {
				sent, serr := sys.SendPackets(nf, pkts)
				if serr != nil {
					for _, m := range pkts {
						_ = sys.Pool().Free(m)
					}
				} else {
					for _, m := range pkts[sent:] {
						_ = sys.Pool().Free(m)
					}
				}
			}
			sys.Sim().Run(sys.Sim().Now() + 500*eventsim.Microsecond)
			if got, rerr := sys.ReceivePackets(nf, out); rerr == nil {
				for i := 0; i < got; i++ {
					_ = sys.Pool().Free(out[i])
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Mutators. Operations may legitimately fail (evicting a region that
	// is mid-reload, unregistering an id racing another cycle); what they
	// must never do is corrupt state or race. Protocol-level failures
	// other than CodeOpFailed are bugs.
	rpcFatal := func(err error) bool {
		if err == nil {
			return false
		}
		var rerr *dhl.ControlError
		return !errors.As(err, &rerr) || rerr.Code != ctlplane.CodeOpFailed
	}
	perMutator := 25
	if testing.Short() {
		perMutator = 10
	}
	var mutWG sync.WaitGroup
	mutErr := make(chan error, 4)
	mutate := func(name string, fn func(c *dhl.ControlClient, i int) error) {
		mutWG.Add(1)
		go func() {
			defer mutWG.Done()
			c := dhl.DialControl(exp.Addr())
			defer func() { _ = c.Close() }()
			for i := 0; i < perMutator; i++ {
				if err := fn(c, i); err != nil {
					mutErr <- err
					return
				}
			}
		}()
	}
	mutate("nf-churn", func(c *dhl.ControlClient, i int) error {
		var reg struct {
			NFID dhl.NFID `json:"nf_id"`
		}
		if err := c.Call("nf.register", map[string]any{"name": "churn", "node": 0}, &reg); err != nil {
			return err
		}
		if err := c.Call("nf.unregister", map[string]any{"nf_id": reg.NFID}, nil); rpcFatal(err) {
			return err
		}
		return nil
	})
	mutate("acc-churn", func(c *dhl.ControlClient, i int) error {
		var load struct {
			AccID dhl.AccID `json:"acc_id"`
		}
		if err := c.Call("acc.load", map[string]any{"hf": dhl.Loopback, "node": 0}, &load); err != nil {
			var rerr *dhl.ControlError
			if errors.As(err, &rerr) && rerr.Code == ctlplane.CodeOpFailed {
				// Region pressure from a racing cycle; try again later.
				return nil
			}
			return err
		}
		// The fresh region reconfigures for a while; evict must refuse
		// politely until it settles, then succeed.
		for {
			err := c.Call("acc.evict", map[string]any{"acc_id": load.AccID}, nil)
			if err == nil {
				return nil
			}
			if rpcFatal(err) {
				return err
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
	mutate("tuner", func(c *dhl.ControlClient, i int) error {
		sizes := []int{1024, 2048, 6144}
		if err := c.Call("tune.batch", map[string]any{"bytes": sizes[i%len(sizes)]}, nil); err != nil {
			return err
		}
		tmos := []int{100, 250, 0}
		if err := c.Call("tune.watchdog", map[string]any{"timeout_us": tmos[i%len(tmos)]}, nil); err != nil {
			return err
		}
		if i%2 == 0 {
			if err := c.Call("fallback.set", map[string]any{"hf": dhl.IPsecCrypto, "node": 0}, nil); rpcFatal(err) {
				return err
			}
		} else {
			if err := c.Call("fallback.clear", map[string]any{"hf": dhl.IPsecCrypto, "node": 0}, nil); rpcFatal(err) {
				return err
			}
		}
		return nil
	})
	mutate("reader", func(c *dhl.ControlClient, i int) error {
		if err := c.Call("health.get", nil, nil); err != nil {
			return err
		}
		var st dhl.TransferStats
		if err := c.Call("stats.get", map[string]any{"node": 0}, &st); err != nil {
			return err
		}
		if err := c.Call("sys.info", nil, nil); err != nil {
			return err
		}
		return c.Call("telemetry.delta", map[string]any{"stream": "chaos-reader", "wait_ms": 10}, nil)
	})

	mutWG.Wait()
	select {
	case err := <-mutErr:
		t.Fatal(err)
	default:
	}
	// Let in-flight work complete, then stop the pumper and drain.
	time.Sleep(20 * time.Millisecond)
	stopTraffic.Store(true)
	pumpWG.Wait()
	sys.Sim().Run(sys.Sim().Now() + 100*eventsim.Millisecond)
	out := make([]*dhl.Packet, 256)
	for {
		got, rerr := sys.ReceivePackets(nf, out)
		if rerr != nil || got == 0 {
			break
		}
		for i := 0; i < got; i++ {
			_ = sys.Pool().Free(out[i])
		}
	}

	// The PR 4 conservation ledger balances through all of it.
	st, err := sys.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.PktsPacked == 0 {
		t.Fatal("no traffic flowed during chaos")
	}
	if st.IBQDrained != st.PktsPacked+st.StagingDrops {
		t.Errorf("ingress ledger unbalanced: drained %d != packed %d + staging drops %d",
			st.IBQDrained, st.PktsPacked, st.StagingDrops)
	}
	if st.PktsPacked != st.PktsDistributed+st.DropFault+st.DropCorrupt+st.DropMismatch+st.DropNoRoute {
		t.Errorf("transfer ledger unbalanced: %+v", st)
	}
	if n := sys.Pool().InUse(); n != 0 {
		t.Errorf("%d mbufs leaked through chaos reconfiguration", n)
	}
}

// TestControlPlaneZeroAllocHotPath proves the tentpole's perf clause:
// with the control plane serving (listener up, management calls made
// over it before and after the window), a warm steady-state burst on
// the hot path still allocates nothing.
func TestControlPlaneZeroAllocHotPath(t *testing.T) {
	sys, err := dhl.Open(dhl.SystemConfig{}, dhl.WithControlPlane())
	if err != nil {
		t.Fatal(err)
	}
	exp, err := sys.Serve("127.0.0.1:0", dhl.WithCallTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = exp.Close() }()
	p := startPumper(sys)

	c := dhl.DialControl(exp.Addr())
	defer func() { _ = c.Close() }()
	var reg struct {
		NFID dhl.NFID `json:"nf_id"`
	}
	if err := c.Call("nf.register", map[string]any{"name": "hot", "node": 0}, &reg); err != nil {
		t.Fatal(err)
	}
	// Loopback is the paper's pure-DMA benchmark module — the hot path
	// with no per-packet compute on top, so any allocation measured below
	// belongs to the transfer machinery itself.
	var load struct {
		AccID dhl.AccID `json:"acc_id"`
	}
	if err := c.Call("acc.load", map[string]any{"hf": dhl.Loopback, "node": 0}, &load); err != nil {
		t.Fatal(err)
	}
	if err := c.Call("tune.batch", map[string]any{"bytes": 2048}, nil); err != nil {
		t.Fatal(err)
	}
	p.do(sys.Settle)
	// Quiesce the pumper: the measuring goroutine now owns the sim, with
	// the HTTP listener still up and its connection still open.
	p.shutdown()

	nf, acc := reg.NFID, load.AccID
	const nPkts = 16
	req := bytes.Repeat([]byte{0x5A}, 200)
	pkts := make([]*dhl.Packet, nPkts)
	out := make([]*dhl.Packet, 2*nPkts)
	cycle := func() {
		for i := range pkts {
			m, aerr := sys.Pool().Alloc()
			if aerr != nil {
				t.Fatal(aerr)
			}
			if aerr := m.AppendBytes(req); aerr != nil {
				t.Fatal(aerr)
			}
			m.AccID = uint16(acc)
			pkts[i] = m
		}
		if sent, serr := sys.SendPackets(nf, pkts); serr != nil || sent != nPkts {
			t.Fatalf("send %d %v", sent, serr)
		}
		sys.Sim().Run(sys.Sim().Now() + 2*eventsim.Millisecond)
		got, rerr := sys.ReceivePackets(nf, out)
		if rerr != nil || got != nPkts {
			t.Fatalf("receive %d %v", got, rerr)
		}
		for i := 0; i < got; i++ {
			_ = sys.Pool().Free(out[i])
		}
	}
	warmup, measured := 50, 100
	if testing.Short() {
		warmup, measured = 25, 40
	}
	for i := 0; i < warmup; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(measured, cycle); avg != 0 {
		t.Errorf("steady-state burst with control plane serving allocates %.1f objects/run, want 0", avg)
	}

	// The management surface is still alive after the measured window.
	p2 := startPumper(sys)
	defer p2.shutdown()
	var st dhl.TransferStats
	if err := c.Call("stats.get", map[string]any{"node": 0}, &st); err != nil {
		t.Fatal(err)
	}
	if st.PktsPacked == 0 {
		t.Error("stats.get after the window sees no traffic")
	}
}

// TestFlowTableObservability wires a stateful NF's flow tables into the
// system: RegisterFlowTables must surface them as dhl_flowtab_* gauges
// on /metrics and as the additive flowtabs field of stats.get.
func TestFlowTableObservability(t *testing.T) {
	sys, err := dhl.Open(dhl.SystemConfig{}, dhl.WithControlPlane())
	if err != nil {
		t.Fatal(err)
	}
	nat := nf.NewNAT(nf.NATConfig{
		External: eth.IPv4{203, 0, 113, 1},
		FlowTTL:  eventsim.Second,
		Clock:    sys.Sim().Now,
	})
	if err := sys.RegisterFlowTables(nat.FlowTabs()...); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterFlowTables(nat.FlowTabs()[0]); err == nil {
		t.Error("duplicate flow-table registration accepted")
	}
	exp, err := sys.Serve("127.0.0.1:0", dhl.WithCallTimeout(15*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = exp.Close() }()
	p := startPumper(sys)
	defer p.shutdown()

	// Push three flows through the NAT on the simulation goroutine.
	p.do(func() {
		buf := make([]byte, 2048)
		for i := 0; i < 3; i++ {
			n, berr := eth.Build(buf, eth.BuildConfig{
				SrcMAC: eth.MAC{2, 0, 0, 0, 0, 1}, DstMAC: eth.MAC{2, 0, 0, 0, 0, 2},
				SrcIP: eth.IPv4{192, 168, 0, byte(i + 1)}, DstIP: eth.IPv4{8, 8, 8, 8},
				SrcPort: 1000, DstPort: 80, Proto: eth.ProtoUDP, Payload: []byte("x"),
			})
			if berr != nil {
				t.Error(berr)
				return
			}
			m, merr := sys.Pool().Alloc()
			if merr != nil {
				t.Error(merr)
				return
			}
			if aerr := m.AppendBytes(buf[:n]); aerr != nil {
				t.Error(aerr)
				return
			}
			if v, _ := nat.ProcessOutbound(m); v != nf.VerdictForward {
				t.Error("NAT dropped the setup flow")
			}
			_ = sys.Pool().Free(m)
		}
	})

	// stats.get reports the tables with their live occupancy.
	c := dhl.DialControl(exp.Addr())
	defer func() { _ = c.Close() }()
	var st struct {
		Flowtabs []dhl.FlowTableInfo `json:"flowtabs"`
	}
	if err := c.Call("stats.get", map[string]any{"node": 0}, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Flowtabs) != 2 {
		t.Fatalf("flowtabs %+v, want nat-outbound and nat-inbound", st.Flowtabs)
	}
	byName := map[string]dhl.FlowTableInfo{}
	for _, ft := range st.Flowtabs {
		byName[ft.Name] = ft
	}
	if byName["nat-outbound"].Entries != 3 || byName["nat-inbound"].Entries != 3 {
		t.Errorf("flowtab occupancy %+v, want 3 entries each", st.Flowtabs)
	}

	// /metrics carries the gauge family with per-table labels.
	resp, err := http.Get("http://" + exp.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`dhl_flowtab_entries{table="nat-outbound"} 3`,
		`dhl_flowtab_entries{table="nat-inbound"} 3`,
		`dhl_flowtab_evictions{table="nat-outbound",reason="idle"}`,
		`dhl_flowtab_capacity{table="nat-outbound"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}

	// Unregistering removes the gauges and the stats.get rows.
	p.do(func() {
		if uerr := sys.UnregisterFlowTable("nat-inbound"); uerr != nil {
			t.Error(uerr)
		}
	})
	if err := c.Call("stats.get", map[string]any{"node": 0}, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Flowtabs) != 1 || st.Flowtabs[0].Name != "nat-outbound" {
		t.Errorf("flowtabs after unregister: %+v", st.Flowtabs)
	}
}

// TestTuneAutoRPC drives the adaptive batching autotuner over the wire:
// tune.auto on -> status -> off against a served system. The tuner is
// constructed lazily (the system was opened with WithControlPlane, not
// WithAutoTune), so this also covers the ensureTuner path.
func TestTuneAutoRPC(t *testing.T) {
	sys, err := dhl.Open(dhl.SystemConfig{}, dhl.WithControlPlane())
	if err != nil {
		t.Fatal(err)
	}
	exp, err := sys.Serve("127.0.0.1:0", dhl.WithCallTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = exp.Close() }()
	p := startPumper(sys)
	defer p.shutdown()

	c := dhl.DialControl(exp.Addr())
	defer func() { _ = c.Close() }()

	var st dhl.TunerStatus
	if err := c.Call("tune.auto", nil, &st); err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Fatalf("tuner enabled before tune.auto on: %+v", st)
	}
	if err := c.Call("tune.auto", map[string]any{"state": "on"}, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Enabled {
		t.Fatalf("tune.auto on returned disabled status: %+v", st)
	}
	// The controller ticks on the event loop the pumper is driving.
	deadline := time.Now().Add(5 * time.Second)
	for st.Windows == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		if err := c.Call("tune.auto", map[string]any{"state": "status"}, &st); err != nil {
			t.Fatal(err)
		}
	}
	if st.Windows == 0 {
		t.Error("tuner sampled no windows while the loop was pumping")
	}
	if err := c.Call("tune.auto", map[string]any{"state": "off"}, &st); err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Fatalf("tune.auto off returned enabled status: %+v", st)
	}
	var rpcErr *ctlplane.Error
	if err := c.Call("tune.auto", map[string]any{"state": "sideways"}, nil); !errors.As(err, &rpcErr) || rpcErr.Code != ctlplane.CodeInvalidParams {
		t.Errorf("bad state value: %v, want CodeInvalidParams", err)
	}
}
