// Command dhl-pktgen exercises the traffic-generation substrate (the
// DPDK-Pktgen stand-in): it drives a simulated port at a configured rate
// and packet size, forwards at line rate, and reports the measured
// throughput, drops and latency.
//
// Usage:
//
//	dhl-pktgen [-size 64] [-gbps 40] [-port-gbps 40] [-ms 50]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/opencloudnext/dhl-go/internal/eventsim"
	"github.com/opencloudnext/dhl-go/internal/mbuf"
	"github.com/opencloudnext/dhl-go/internal/netdev"
)

func main() {
	size := flag.Int("size", 64, "frame size in bytes (64..1500)")
	gbps := flag.Float64("gbps", 40, "offered wire rate in Gbps")
	portGbps := flag.Float64("port-gbps", 40, "port line rate in Gbps")
	ms := flag.Int("ms", 50, "virtual run time in milliseconds")
	flag.Parse()
	if err := run(*size, *gbps, *portGbps, *ms); err != nil {
		fmt.Fprintln(os.Stderr, "dhl-pktgen:", err)
		os.Exit(1)
	}
}

func run(size int, gbps, portGbps float64, ms int) error {
	sim := eventsim.New()
	pool, err := mbuf.NewPool(mbuf.PoolConfig{Name: "pktgen", Capacity: 8192})
	if err != nil {
		return err
	}
	rx, err := netdev.NewPort(sim, netdev.PortConfig{ID: 0, RateBps: portGbps * 1e9})
	if err != nil {
		return err
	}
	tx, err := netdev.NewPort(sim, netdev.PortConfig{ID: 1, RateBps: portGbps * 1e9})
	if err != nil {
		return err
	}
	gen, err := netdev.NewGenerator(sim, netdev.GeneratorConfig{
		Port: rx, Pool: pool, FrameSize: size, OfferedWireBps: gbps * 1e9,
	})
	if err != nil {
		return err
	}

	// A zero-cost forwarder: everything the port delivers goes straight
	// back out, so the report reflects the generator and line-rate models.
	buf := make([]*mbuf.Mbuf, 32)
	fwd := eventsim.NewCore(sim, 0, 0, 3e9)
	eventsim.NewPollLoop(sim, fwd, 20, func() (float64, func()) {
		n := rx.RxBurst(0, buf)
		if n == 0 {
			return 0, nil
		}
		now := int64(sim.Now())
		batch := make([]*mbuf.Mbuf, n)
		copy(batch, buf[:n])
		for _, m := range batch {
			m.RxTimestamp = now
		}
		return float64(n), func() { tx.TxBurst(batch, pool) }
	}).Start()

	horizon := eventsim.Time(ms) * eventsim.Millisecond
	tx.SetMeasureWindow(0, horizon)
	gen.Start()
	sim.Run(horizon)

	good, wire, pkts, lat := tx.Measured(horizon)
	st := rx.Stats()
	fmt.Printf("offered   : %.2f Gbps wire, %dB frames\n", gbps, size)
	fmt.Printf("generated : %d frames (%d alloc failures)\n", gen.Sent(), gen.AllocFailures())
	fmt.Printf("forwarded : %d frames, %.2f Gbps goodput, %.2f Gbps wire\n", pkts, good/1e9, wire/1e9)
	fmt.Printf("rx drops  : %d (queue full)\n", st.RxDropped)
	fmt.Printf("latency   : mean %.2fus  p50 %.2fus  p99 %.2fus\n",
		lat.Mean()/1e6, lat.Percentile(50)/1e6, lat.Percentile(99)/1e6)
	return nil
}
