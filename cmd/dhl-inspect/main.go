// Command dhl-inspect stands up a simulated DHL system, loads accelerator
// modules, and dumps the FPGA floorplan, resource utilization and the
// hardware function table — the operator's view of Figure 2.
//
// Usage:
//
//	dhl-inspect [-modules ipsec-crypto,pattern-matching] [-fill]
//
// -fill keeps loading copies of the first module until the board rejects
// the next one, demonstrating the §V-F packing bound.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	dhl "github.com/opencloudnext/dhl-go"
)

func main() {
	modules := flag.String("modules", "ipsec-crypto,pattern-matching", "comma-separated hardware function names to load")
	fill := flag.Bool("fill", false, "load copies of the first module until the board is full")
	flag.Parse()
	if err := run(*modules, *fill); err != nil {
		fmt.Fprintln(os.Stderr, "dhl-inspect:", err)
		os.Exit(1)
	}
}

func run(modules string, fill bool) error {
	sys, err := dhl.NewSystem(dhl.SystemConfig{})
	if err != nil {
		return err
	}
	names := strings.Split(modules, ",")
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		acc, lerr := sys.SearchByName(name, 0)
		if lerr != nil {
			return fmt.Errorf("load %q: %w", name, lerr)
		}
		fmt.Printf("loaded %q as acc_id %d\n", name, acc)
	}
	if fill && len(names) > 0 {
		first := strings.TrimSpace(names[0])
		n := 1
		for {
			if _, lerr := sys.LoadPR(first, 0); lerr != nil {
				fmt.Printf("board full after %d instance(s) of %q: %v\n", n, first, lerr)
				break
			}
			n++
		}
	}
	sys.Settle()

	fmt.Println("\nHardware function table:")
	for _, row := range sys.HFTable() {
		fmt.Println(" ", row)
	}
	fmt.Println()
	dev, err := sys.Device(0)
	if err != nil {
		return err
	}
	fmt.Print(dev.Floorplan())
	return nil
}
