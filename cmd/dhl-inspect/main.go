// Command dhl-inspect is the operator's console for a DHL system: it
// either connects to a live system's management API or spawns a
// simulated one of its own.
//
// Connect mode (-addr) drives a running system over /api/v1:
//
//	dhl-inspect -addr :9090                     overview: sys.info + health.get + placement.get + tune.auto
//	dhl-inspect -addr :9090 -cmd acc.load -args ipsec-crypto,0
//	dhl-inspect -addr :9090 -cmd acc.migrate -args 1
//	dhl-inspect -addr :9090 -cmd board.drain -args 0
//	dhl-inspect -addr :9090 -cmd tune.auto -args on
//	dhl-inspect -addr :9090 -watch 5            5 telemetry.delta long-polls
//	dhl-inspect -addr :9090 -json ...           machine-readable output
//
// -cmd sends one management RPC; -args fills its parameters
// positionally (run -cmd help for the table). The fleet surface —
// placement.get, acc.migrate, acc.replicate, board.drain/undrain/offline
// and placement.rebalance — drives the multi-board placement scheduler.
// -watch long-polls telemetry.delta and prints the per-stage latency
// delta for each active window. -json prints raw JSON instead of tables.
//
// Spawn mode (no -addr) stands up a simulated system, loads accelerator
// modules, and dumps the FPGA floorplan, resource utilization and the
// hardware function table — the operator's view of Figure 2:
//
//	dhl-inspect [-modules ipsec-crypto,pattern-matching] [-boards N] [-fill]
//	            [-chaos-seed N] [-watch N] [-serve addr]
//
// -boards spawns a fleet of N boards per node, so a second dhl-inspect
// can exercise migration and replication against the served system.
//
// -fill keeps loading copies of the first module until the board rejects
// the next one, demonstrating the §V-F packing bound.
//
// -chaos-seed arms deterministic fault injection and pushes a short burst
// of loopback traffic through the board, then prints the health FSM state
// and the fault-attribution ledger; the same seed reproduces the same run.
//
// -watch arms the telemetry subsystem, paces N rounds of loopback traffic
// through the board, and after each round prints the per-stage latency
// delta (count, p50, p99, mean) plus the batch counters for that round.
//
// -serve exposes the full operator surface at the given address —
// Prometheus text on /metrics, expvar JSON on /debug/vars, pprof under
// /debug/pprof/, and the JSON-RPC management API on /api/v1 — then keeps
// pumping the event loop until a sys.shutdown RPC or SIGINT arrives, so
// a second dhl-inspect can manage the first with -addr.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	dhl "github.com/opencloudnext/dhl-go"
	"github.com/opencloudnext/dhl-go/internal/eventsim"
	"github.com/opencloudnext/dhl-go/internal/hwfunc"
)

func main() {
	addr := flag.String("addr", "", "management endpoint of a live system (e.g. :9090); connect instead of spawning")
	cmd := flag.String("cmd", "", "with -addr: send one management RPC (e.g. acc.load); 'help' lists commands")
	args := flag.String("args", "", "comma-separated positional parameters for -cmd")
	jsonOut := flag.Bool("json", false, "print raw JSON instead of tables")
	serve := flag.String("serve", "", "spawn mode: serve /metrics, /debug/* and /api/v1 at this address, pump until sys.shutdown or SIGINT")
	modules := flag.String("modules", "ipsec-crypto,pattern-matching", "spawn mode: comma-separated hardware function names to load")
	boards := flag.Int("boards", 1, "spawn mode: FPGA boards per node (a fleet for migration/replication RPCs)")
	fill := flag.Bool("fill", false, "spawn mode: load copies of the first module until the board is full")
	chaosSeed := flag.Uint64("chaos-seed", 0, "spawn mode: arm fault injection with this seed and run a loopback chaos burst (0: off)")
	watch := flag.Int("watch", 0, "print per-stage latency deltas for N rounds (spawn: paced loopback traffic; -addr: telemetry.delta long-polls)")
	flag.Parse()

	var err error
	switch {
	case *cmd == "help":
		printCommandTable(os.Stdout)
	case *addr != "":
		if *serve != "" || *fill || *chaosSeed != 0 || *boards != 1 || *modules != flag.Lookup("modules").DefValue {
			err = fmt.Errorf("-serve, -modules, -boards, -fill and -chaos-seed spawn a local system and cannot be combined with -addr")
		} else {
			err = runConnected(*addr, *cmd, *args, *watch, *jsonOut)
		}
	case *cmd != "":
		err = fmt.Errorf("-cmd drives a live system; it requires -addr (or use -serve to spawn one first)")
	default:
		err = runSpawned(*modules, *boards, *fill, *chaosSeed, *watch, *serve, *jsonOut)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhl-inspect:", err)
		os.Exit(1)
	}
}

// --- connect mode -------------------------------------------------------

// cmdSpec maps one management RPC's positional -args onto its JSON
// parameter object. Fields suffixed "?" are optional; kind "bytes"
// passes the argument through as base64 (the wire form of []byte).
type cmdSpec struct {
	params []string // "name:kind" with kind in string|int|bytes, "?" suffix when optional
	doc    string
}

var cmdSpecs = map[string]cmdSpec{
	"sys.ping":        {nil, "liveness probe"},
	"sys.info":        {nil, "system overview"},
	"sys.shutdown":    {nil, "trigger the serving process's shutdown hook"},
	"nf.register":     {[]string{"name:string", "node:int?"}, "register an NF instance"},
	"nf.unregister":   {[]string{"nf_id:int"}, "drain and remove an NF instance"},
	"acc.load":        {[]string{"hf:string", "node:int?"}, "load a module onto a PR region"},
	"acc.evict":       {[]string{"acc_id:int"}, "unload an accelerator, free its region"},
	"acc.configure":   {[]string{"acc_id:int", "params:bytes"}, "send a configuration blob (base64)"},
	"fallback.set":    {[]string{"hf:string", "node:int?"}, "install the module DB software fallback"},
	"fallback.clear":  {[]string{"hf:string", "node:int?"}, "remove an installed software fallback"},
	"tune.batch":      {[]string{"bytes:int"}, "retarget the max transfer batch size"},
	"tune.watchdog":   {[]string{"timeout_us:int"}, "retune (0: disarm) the per-batch watchdog"},
	"tune.auto":       {[]string{"state:string?"}, "adaptive batching autotuner: on|off|status (default status)"},
	"health.get":      {[]string{"acc_id:int?"}, "health FSM state, one or all accelerators"},
	"stats.get":       {[]string{"node:int?"}, "one node's transfer conservation ledger"},
	"telemetry.delta": {[]string{"stream:string", "wait_ms:int?"}, "long-poll activity since the stream's last call"},

	"placement.get":       {nil, "fleet snapshot: boards, resources, routed endpoints"},
	"placement.rebalance": {nil, "move accelerators off lost/draining boards"},
	"acc.migrate":         {[]string{"acc_id:int", "board:int?"}, "live-migrate an accelerator (board omitted: scheduler picks)"},
	"acc.replicate":       {[]string{"acc_id:int", "board:int?"}, "warm a load-sharing replica on another board"},
	"board.drain":         {[]string{"board:int"}, "stop placements on a board and migrate its accelerators away"},
	"board.undrain":       {[]string{"board:int"}, "return a draining board to service"},
	"board.offline":       {[]string{"board:int"}, "hard-kill a board and rebalance off it"},
}

func printCommandTable(w *os.File) {
	names := make([]string, 0, len(cmdSpecs))
	for name := range cmdSpecs {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(w, "management commands (dhl-inspect -addr HOST:PORT -cmd NAME -args A,B,...):")
	for _, name := range names {
		spec := cmdSpecs[name]
		params := make([]string, len(spec.params))
		for i, p := range spec.params {
			params[i] = strings.SplitN(p, ":", 2)[0]
			if strings.HasSuffix(p, "?") {
				params[i] += "?"
			}
		}
		fmt.Fprintf(w, "  %-16s %-28s %s\n", name, strings.Join(params, ","), spec.doc)
	}
}

// buildParams turns the comma-separated positional -args into the RPC's
// parameter object according to its spec.
func buildParams(name, raw string) (map[string]any, error) {
	spec, ok := cmdSpecs[name]
	if !ok {
		return nil, fmt.Errorf("unknown command %q (run -cmd help)", name)
	}
	var vals []string
	if raw != "" {
		vals = strings.Split(raw, ",")
	}
	if len(vals) > len(spec.params) {
		return nil, fmt.Errorf("%s takes at most %d argument(s)", name, len(spec.params))
	}
	params := map[string]any{}
	for i, p := range spec.params {
		optional := strings.HasSuffix(p, "?")
		p = strings.TrimSuffix(p, "?")
		field, kind, _ := strings.Cut(p, ":")
		if i >= len(vals) {
			if optional {
				break
			}
			return nil, fmt.Errorf("%s needs %q (run -cmd help)", name, field)
		}
		val := strings.TrimSpace(vals[i])
		switch kind {
		case "int":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("%s: %q must be an integer: %v", name, field, err)
			}
			params[field] = n
		case "bytes":
			// Pass base64 through verbatim; the server decodes it as []byte.
			params[field] = val
		default:
			params[field] = val
		}
	}
	return params, nil
}

// runConnected drives a live system's management endpoint.
func runConnected(addr, cmd, args string, watch int, jsonOut bool) error {
	c := dhl.DialControl(addr)
	defer func() { _ = c.Close() }()
	if cmd != "" {
		params, err := buildParams(cmd, args)
		if err != nil {
			return err
		}
		var res json.RawMessage
		if err := c.Call(cmd, params, &res); err != nil {
			return err
		}
		return printJSON(os.Stdout, res, !jsonOut)
	}
	if watch > 0 {
		return watchRemote(c, watch, jsonOut)
	}
	return overviewRemote(c, jsonOut)
}

// overviewRemote prints the connect-mode default view: sys.info plus
// per-accelerator health.
func overviewRemote(c *dhl.ControlClient, jsonOut bool) error {
	var info struct {
		Nodes        int      `json:"nodes"`
		BatchBytes   int      `json:"batch_bytes"`
		WatchdogUs   int      `json:"watchdog_timeout_us"`
		HFTable      []string `json:"hf_table"`
		ModuleDB     []string `json:"module_db"`
		Accelerators []struct {
			AccID  dhl.AccID `json:"acc_id"`
			HF     string    `json:"hf"`
			Node   int       `json:"node"`
			FPGA   int       `json:"fpga"`
			Region int       `json:"region"`
			Ready  bool      `json:"ready"`
		} `json:"accelerators"`
	}
	if err := c.Call("sys.info", nil, &info); err != nil {
		return err
	}
	var health struct {
		Accs []struct {
			AccID          dhl.AccID `json:"acc_id"`
			Health         string    `json:"health"`
			Faults         uint64    `json:"faults"`
			Quarantines    uint64    `json:"quarantines"`
			Reloads        uint64    `json:"reloads"`
			FallbackActive bool      `json:"fallback_active"`
		} `json:"accs"`
	}
	if err := c.Call("health.get", nil, &health); err != nil {
		return err
	}
	var fleet struct {
		Boards []struct {
			Board       int    `json:"board"`
			Node        int    `json:"node"`
			State       string `json:"state"`
			FreeLUTs    int    `json:"free_luts"`
			FreeBRAM    int    `json:"free_bram"`
			FreeRegions int    `json:"free_regions"`
			MigratedIn  uint64 `json:"migrated_in"`
			MigratedOut uint64 `json:"migrated_out"`
			Endpoints   []struct {
				AccID    dhl.AccID `json:"acc_id"`
				HF       string    `json:"hf"`
				Region   int       `json:"region"`
				Weight   uint32    `json:"weight"`
				Ready    bool      `json:"ready"`
				Disabled bool      `json:"disabled"`
				Primary  bool      `json:"primary"`
			} `json:"endpoints"`
		} `json:"boards"`
	}
	if err := c.Call("placement.get", nil, &fleet); err != nil {
		return err
	}
	var tune struct {
		Enabled         bool    `json:"enabled"`
		IntervalUs      float64 `json:"interval_us"`
		Windows         uint64  `json:"windows"`
		GrowDecisions   uint64  `json:"grow_decisions"`
		ShrinkDecisions uint64  `json:"shrink_decisions"`
		Accs            []struct {
			AccID          dhl.AccID `json:"acc_id"`
			HF             string    `json:"hf"`
			Node           int       `json:"node"`
			BatchTarget    int       `json:"batch_target"`
			FlushTimeoutUs float64   `json:"flush_timeout_us"`
			Fill           float64   `json:"fill"`
			BatchLatencyUs float64   `json:"batch_latency_us"`
		} `json:"accs"`
		Nodes []struct {
			Node     int    `json:"node"`
			Burst    int    `json:"burst"`
			Rejected uint64 `json:"ibq_rejected"`
			Hot      bool   `json:"ibq_pressured"`
		} `json:"nodes"`
	}
	if err := c.Call("tune.auto", nil, &tune); err != nil {
		return err
	}
	if jsonOut {
		raw, err := json.Marshal(map[string]any{"info": info, "health": health.Accs, "placement": fleet.Boards, "autotune": tune})
		if err != nil {
			return err
		}
		return printJSON(os.Stdout, raw, false)
	}
	fmt.Printf("system at %s: %d node(s), batch %d bytes, watchdog %d us\n",
		c.URL(), info.Nodes, info.BatchBytes, info.WatchdogUs)
	fmt.Printf("module DB: %s\n", strings.Join(info.ModuleDB, ", "))
	fmt.Println("\nHardware function table:")
	for _, row := range info.HFTable {
		fmt.Println(" ", row)
	}
	healthByID := map[dhl.AccID]string{}
	for _, h := range health.Accs {
		healthByID[h.AccID] = fmt.Sprintf("%s (faults %d, quarantines %d, reloads %d, fallback active: %v)",
			h.Health, h.Faults, h.Quarantines, h.Reloads, h.FallbackActive)
	}
	fmt.Println("\nAccelerators:")
	if len(info.Accelerators) == 0 {
		fmt.Println("  (none loaded)")
	}
	for _, a := range info.Accelerators {
		fmt.Printf("  acc_id %d: %s node %d fpga %d region %d ready=%v — %s\n",
			a.AccID, a.HF, a.Node, a.FPGA, a.Region, a.Ready, healthByID[a.AccID])
	}
	fmt.Println("\nFleet placement:")
	for _, b := range fleet.Boards {
		fmt.Printf("  board %d: node %d %s — free %d LUTs, %d BRAM, %d region(s); migrations in/out %d/%d\n",
			b.Board, b.Node, b.State, b.FreeLUTs, b.FreeBRAM, b.FreeRegions, b.MigratedIn, b.MigratedOut)
		for _, ep := range b.Endpoints {
			role := "replica"
			if ep.Primary {
				role = "primary"
			}
			fmt.Printf("    acc_id %d (%s) region %d: %s, weight %d, ready=%v disabled=%v\n",
				ep.AccID, ep.HF, ep.Region, role, ep.Weight, ep.Ready, ep.Disabled)
		}
	}
	fmt.Println("\nAdaptive batching:")
	if !tune.Enabled {
		fmt.Println("  autotuner off (enable: -cmd tune.auto -args on)")
		return nil
	}
	fmt.Printf("  autotuner on: %.0f us windows, %d sampled, decisions grow/shrink %d/%d\n",
		tune.IntervalUs, tune.Windows, tune.GrowDecisions, tune.ShrinkDecisions)
	for _, a := range tune.Accs {
		fmt.Printf("  acc_id %d (%s) node %d: batch target %d B, flush %.1f us, fill %.2f, batch latency %.1f us\n",
			a.AccID, a.HF, a.Node, a.BatchTarget, a.FlushTimeoutUs, a.Fill, a.BatchLatencyUs)
	}
	for _, n := range tune.Nodes {
		fmt.Printf("  node %d: burst %d, IBQ rejected %d, pressured=%v\n",
			n.Node, n.Burst, n.Rejected, n.Hot)
	}
	return nil
}

// watchRemote long-polls telemetry.delta and prints each active window's
// per-stage latency view — the same table spawn-mode -watch prints, fed
// over the wire instead of in-process.
func watchRemote(c *dhl.ControlClient, rounds int, jsonOut bool) error {
	fmt.Printf("watch: %d telemetry.delta long-polls against %s\n", rounds, c.URL())
	for round := 1; round <= rounds; round++ {
		var d struct {
			Active bool                   `json:"active"`
			Delta  *dhl.TelemetrySnapshot `json:"delta"`
		}
		if err := c.Call("telemetry.delta",
			map[string]any{"stream": "dhl-inspect", "wait_ms": 2000}, &d); err != nil {
			return err
		}
		if jsonOut {
			raw, err := json.Marshal(d)
			if err != nil {
				return err
			}
			if perr := printJSON(os.Stdout, raw, false); perr != nil {
				return perr
			}
			continue
		}
		if !d.Active {
			fmt.Printf("round %2d: idle\n", round)
			continue
		}
		printDeltaRound(round, d.Delta)
	}
	return nil
}

// printJSON writes raw to w, indented when pretty.
func printJSON(w *os.File, raw json.RawMessage, pretty bool) error {
	if len(raw) == 0 {
		raw = json.RawMessage("null")
	}
	if pretty {
		var buf bytes.Buffer
		if err := json.Indent(&buf, raw, "", "  "); err != nil {
			return err
		}
		_, err := fmt.Fprintln(w, buf.String())
		return err
	}
	_, err := fmt.Fprintln(w, string(raw))
	return err
}

// printDeltaRound renders one round's TelemetrySnapshot delta: batch
// counters plus the per-stage latency table.
func printDeltaRound(round int, d *dhl.TelemetrySnapshot) {
	fmt.Printf("round %2d: %d batches, %d pkts, %d bytes delivered\n",
		round, d.CounterTotal(dhl.CounterBatches), d.CounterTotal(dhl.CounterPackets),
		d.CounterTotal(dhl.CounterBytes))
	fmt.Printf("  %-12s %7s %10s %10s %10s\n", "stage", "count", "p50(ns)", "p99(ns)", "mean(ns)")
	for s := dhl.StageIBQWait; s < dhl.NumStages; s++ {
		h := d.Stages[s]
		if h.Count == 0 {
			continue
		}
		fmt.Printf("  %-12s %7d %10.0f %10.0f %10.0f\n",
			s, h.Count, h.QuantileNs(0.50), h.QuantileNs(0.99), h.MeanNs())
	}
}

// --- spawn mode ---------------------------------------------------------

func runSpawned(modules string, boards int, fill bool, chaosSeed uint64, watch int, serve string, jsonOut bool) error {
	if jsonOut {
		return fmt.Errorf("-json applies to connect mode (-addr) output")
	}
	var opts []dhl.Option
	if chaosSeed != 0 {
		plan, err := dhl.NewFaultPlan(chaosSeed,
			dhl.FaultSpec{Kind: dhl.FaultModuleError, EveryN: 1, Count: 8},
			dhl.FaultSpec{Kind: dhl.FaultDMAH2CError, EveryN: 5, Count: 4},
		)
		if err != nil {
			return err
		}
		opts = append(opts, dhl.WithFaultPlan(plan))
	}
	if serve != "" {
		opts = append(opts, dhl.WithControlPlane())
	}
	sys, err := dhl.Open(dhl.SystemConfig{Telemetry: watch > 0, FPGAsPerNode: boards}, opts...)
	if err != nil {
		return err
	}
	shutdown := make(chan os.Signal, 1)
	if serve != "" {
		exp, serr := sys.Serve(serve, dhl.WithShutdownHook(func() {
			shutdown <- syscall.SIGTERM
		}))
		if serr != nil {
			return serr
		}
		defer func() { _ = exp.Close() }()
		fmt.Printf("serving operator surface at http://%s (metrics: /metrics, expvar: /debug/vars, pprof: /debug/pprof/, api: /api/v1)\n", exp.Addr())
	}
	names := strings.Split(modules, ",")
	var loaded []dhl.AccID
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		acc, lerr := sys.SearchByName(name, 0)
		if lerr != nil {
			return fmt.Errorf("load %q: %w", name, lerr)
		}
		loaded = append(loaded, acc)
		fmt.Printf("loaded %q as acc_id %d\n", name, acc)
	}
	if fill && len(names) > 0 {
		first := strings.TrimSpace(names[0])
		n := 1
		for {
			if _, lerr := sys.LoadPR(first, 0); lerr != nil {
				fmt.Printf("board full after %d instance(s) of %q: %v\n", n, first, lerr)
				break
			}
			n++
		}
	}
	sys.Settle()

	if chaosSeed != 0 {
		acc, cerr := chaosBurst(sys, chaosSeed)
		if cerr != nil {
			return cerr
		}
		loaded = append(loaded, acc)
	}
	if watch > 0 {
		if werr := watchLoop(sys, watch); werr != nil {
			return werr
		}
	}

	fmt.Println("\nHardware function table:")
	for _, row := range sys.HFTable() {
		fmt.Println(" ", row)
	}
	if chaosSeed != 0 {
		fmt.Println("\nAccelerator health:")
		for _, acc := range loaded {
			rep, herr := sys.AccHealth(acc)
			if herr != nil {
				return herr
			}
			fmt.Printf("  acc_id %d: %s (faults %d, quarantines %d, reloads %d, fallback active: %v)\n",
				acc, rep.Health, rep.Faults, rep.Quarantines, rep.Reloads, rep.FallbackActive)
		}
	}
	fmt.Println()
	dev, err := sys.Device(0)
	if err != nil {
		return err
	}
	fmt.Print(dev.Floorplan())
	if serve != "" {
		// Keep the event loop pumping so management RPCs execute; a
		// sys.shutdown RPC (via the hook above) or SIGINT/SIGTERM ends it.
		signal.Notify(shutdown, syscall.SIGINT, syscall.SIGTERM)
		fmt.Println("\npumping event loop; stop with: dhl-inspect -addr", serve, "-cmd sys.shutdown")
		sim := sys.Sim()
		for {
			select {
			case sig := <-shutdown:
				fmt.Printf("shutting down (%v)\n", sig)
				return nil
			default:
				sim.Run(sim.Now() + eventsim.Millisecond)
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	return nil
}

// watchLoop paces rounds of loopback traffic through the telemetry-armed
// system and prints the per-stage latency view after every round: the
// TelemetrySnapshot delta against the previous round isolates exactly the
// batches that completed in that window.
func watchLoop(sys *dhl.System, rounds int) error {
	acc, err := sys.SearchByName(dhl.Loopback, 0)
	if err != nil {
		return err
	}
	sys.Settle() // the loopback bitstream loads over ICAP
	nf, err := sys.Register("inspect-watch", 0)
	if err != nil {
		return err
	}
	sim, pool := sys.Sim(), sys.Pool()
	payload := []byte("dhl-inspect watch probe........................................")
	const nPkts = 32
	pkts := make([]*dhl.Packet, nPkts)
	out := make([]*dhl.Packet, 2*nPkts)
	prev := sys.Snapshot()
	fmt.Printf("\nwatch: %d rounds x %d loopback packets\n", rounds, nPkts)
	for round := 1; round <= rounds; round++ {
		for i := range pkts {
			m, aerr := pool.Alloc()
			if aerr != nil {
				return aerr
			}
			if aerr := m.AppendBytes(payload); aerr != nil {
				_ = pool.Free(m)
				return aerr
			}
			m.AccID = uint16(acc)
			pkts[i] = m
		}
		n, serr := sys.SendPackets(nf, pkts)
		if serr != nil {
			return serr
		}
		for _, m := range pkts[n:] {
			_ = pool.Free(m)
		}
		sim.Run(sim.Now() + 300*eventsim.Microsecond)
		got, rerr := sys.ReceivePackets(nf, out)
		if rerr != nil {
			return rerr
		}
		for i := 0; i < got; i++ {
			if ferr := pool.Free(out[i]); ferr != nil {
				return ferr
			}
		}
		snap := sys.Snapshot()
		d := snap.Delta(prev)
		prev = snap
		printDeltaRound(round, d)
	}
	return nil
}

// chaosBurst pushes paced loopback traffic through the armed system: the
// injected module errors drive the loopback accelerator through the health
// FSM (degraded, then quarantined with the software fallback carrying the
// tail) while the DMA retry masks the transient H2C faults.
func chaosBurst(sys *dhl.System, seed uint64) (dhl.AccID, error) {
	acc, err := sys.SearchByName(dhl.Loopback, 0)
	if err != nil {
		return acc, err
	}
	spec := hwfunc.Specs()[hwfunc.LoopbackName]
	if err := sys.RegisterFallback(dhl.Loopback, 0, spec.New); err != nil {
		return acc, err
	}
	sys.Settle() // the loopback bitstream loads over ICAP
	nf, err := sys.Register("inspect-chaos", 0)
	if err != nil {
		return acc, err
	}
	sim, pool := sys.Sim(), sys.Pool()
	payload := []byte("dhl-inspect chaos probe")
	var sent, ok, fallback, unprocessed int
	scratch := make([]*dhl.Packet, 32)
	drain := func() error {
		for {
			n, derr := sys.ReceivePackets(nf, scratch)
			if derr != nil {
				return derr
			}
			if n == 0 {
				return nil
			}
			for _, m := range scratch[:n] {
				switch m.Status {
				case dhl.StatusFallback:
					fallback++
				case dhl.StatusUnprocessed:
					unprocessed++
				default:
					ok++
				}
				if ferr := pool.Free(m); ferr != nil {
					return ferr
				}
			}
		}
	}
	for round := 0; round < 24; round++ {
		burst := make([]*dhl.Packet, 0, 8)
		for i := 0; i < 8; i++ {
			m, aerr := pool.Alloc()
			if aerr != nil {
				return acc, aerr
			}
			if aerr := m.AppendBytes(payload); aerr != nil {
				if ferr := pool.Free(m); ferr != nil {
					return acc, ferr
				}
				return acc, aerr
			}
			m.AccID = uint16(acc)
			burst = append(burst, m)
		}
		n, serr := sys.SendPackets(nf, burst)
		if serr != nil {
			return acc, serr
		}
		sent += n
		for _, m := range burst[n:] {
			if ferr := pool.Free(m); ferr != nil {
				return acc, ferr
			}
		}
		sim.Run(sim.Now() + 50*eventsim.Microsecond)
		if derr := drain(); derr != nil {
			return acc, derr
		}
	}
	sim.Run(sim.Now() + 5*eventsim.Millisecond)
	if derr := drain(); derr != nil {
		return acc, derr
	}
	st, err := sys.Stats(0)
	if err != nil {
		return acc, err
	}
	fmt.Printf("\nchaos burst (seed %d): sent %d, delivered ok/fallback/unprocessed %d/%d/%d\n",
		seed, sent, ok, fallback, unprocessed)
	fmt.Printf("fault ledger: dma retries %d (give-ups %d), corrupt batches %d, faulted-batch drops %d pkts,\n",
		st.DMARetries, st.DMARetryGiveUps, st.CorruptBatches, st.DropFault)
	fmt.Printf("              watchdog timeouts %d, forced quarantines %d\n",
		st.WatchdogTimeouts, st.ForcedQuarantines)
	return acc, nil
}
