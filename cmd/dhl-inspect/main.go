// Command dhl-inspect stands up a simulated DHL system, loads accelerator
// modules, and dumps the FPGA floorplan, resource utilization and the
// hardware function table — the operator's view of Figure 2.
//
// Usage:
//
//	dhl-inspect [-modules ipsec-crypto,pattern-matching] [-fill]
//	            [-chaos-seed N] [-watch N] [-metrics addr]
//
// -fill keeps loading copies of the first module until the board rejects
// the next one, demonstrating the §V-F packing bound.
//
// -chaos-seed arms deterministic fault injection and pushes a short burst
// of loopback traffic through the board, then prints the health FSM state
// and the fault-attribution ledger; the same seed reproduces the same run.
//
// -watch arms the telemetry subsystem, paces N rounds of loopback traffic
// through the board, and after each round prints the per-stage latency
// delta (count, p50, p99, mean) plus the batch counters for that round —
// the live operator's view of the pipeline.
//
// -metrics additionally serves the telemetry registry over HTTP at the
// given address for the duration of the run: Prometheus text on /metrics,
// expvar JSON on /debug/vars, pprof under /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	dhl "github.com/opencloudnext/dhl-go"
	"github.com/opencloudnext/dhl-go/internal/eventsim"
	"github.com/opencloudnext/dhl-go/internal/hwfunc"
)

func main() {
	modules := flag.String("modules", "ipsec-crypto,pattern-matching", "comma-separated hardware function names to load")
	fill := flag.Bool("fill", false, "load copies of the first module until the board is full")
	chaosSeed := flag.Uint64("chaos-seed", 0, "arm fault injection with this seed and run a loopback chaos burst (0: off)")
	watch := flag.Int("watch", 0, "arm telemetry and print per-stage latency deltas for N paced loopback rounds (0: off)")
	metrics := flag.String("metrics", "", "serve Prometheus/expvar/pprof at this address while running (e.g. 127.0.0.1:9090; implies telemetry)")
	flag.Parse()
	if err := run(*modules, *fill, *chaosSeed, *watch, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "dhl-inspect:", err)
		os.Exit(1)
	}
}

func run(modules string, fill bool, chaosSeed uint64, watch int, metrics string) error {
	var plan *dhl.FaultPlan
	if chaosSeed != 0 {
		var err error
		plan, err = dhl.NewFaultPlan(chaosSeed,
			dhl.FaultSpec{Kind: dhl.FaultModuleError, EveryN: 1, Count: 8},
			dhl.FaultSpec{Kind: dhl.FaultDMAH2CError, EveryN: 5, Count: 4},
		)
		if err != nil {
			return err
		}
	}
	sys, err := dhl.NewSystem(dhl.SystemConfig{Faults: plan, Telemetry: watch > 0 || metrics != ""})
	if err != nil {
		return err
	}
	if metrics != "" {
		exp, merr := sys.ServeMetrics(metrics)
		if merr != nil {
			return merr
		}
		defer func() { _ = exp.Close() }()
		fmt.Printf("serving metrics at http://%s/metrics (expvar: /debug/vars, pprof: /debug/pprof/)\n", exp.Addr())
	}
	names := strings.Split(modules, ",")
	var loaded []dhl.AccID
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		acc, lerr := sys.SearchByName(name, 0)
		if lerr != nil {
			return fmt.Errorf("load %q: %w", name, lerr)
		}
		loaded = append(loaded, acc)
		fmt.Printf("loaded %q as acc_id %d\n", name, acc)
	}
	if fill && len(names) > 0 {
		first := strings.TrimSpace(names[0])
		n := 1
		for {
			if _, lerr := sys.LoadPR(first, 0); lerr != nil {
				fmt.Printf("board full after %d instance(s) of %q: %v\n", n, first, lerr)
				break
			}
			n++
		}
	}
	sys.Settle()

	if plan != nil {
		acc, cerr := chaosBurst(sys, chaosSeed)
		if cerr != nil {
			return cerr
		}
		loaded = append(loaded, acc)
	}
	if watch > 0 {
		if werr := watchLoop(sys, watch); werr != nil {
			return werr
		}
	}

	fmt.Println("\nHardware function table:")
	for _, row := range sys.HFTable() {
		fmt.Println(" ", row)
	}
	if plan != nil {
		fmt.Println("\nAccelerator health:")
		for _, acc := range loaded {
			rep, herr := sys.AccHealth(acc)
			if herr != nil {
				return herr
			}
			fmt.Printf("  acc_id %d: %s (faults %d, quarantines %d, reloads %d, fallback active: %v)\n",
				acc, rep.Health, rep.Faults, rep.Quarantines, rep.Reloads, rep.FallbackActive)
		}
	}
	fmt.Println()
	dev, err := sys.Device(0)
	if err != nil {
		return err
	}
	fmt.Print(dev.Floorplan())
	return nil
}

// watchLoop paces rounds of loopback traffic through the telemetry-armed
// system and prints the per-stage latency view after every round: the
// TelemetrySnapshot delta against the previous round isolates exactly the
// batches that completed in that window.
func watchLoop(sys *dhl.System, rounds int) error {
	acc, err := sys.SearchByName(dhl.Loopback, 0)
	if err != nil {
		return err
	}
	sys.Settle() // the loopback bitstream loads over ICAP
	nf, err := sys.Register("inspect-watch", 0)
	if err != nil {
		return err
	}
	sim, pool := sys.Sim(), sys.Pool()
	payload := []byte("dhl-inspect watch probe........................................")
	const nPkts = 32
	pkts := make([]*dhl.Packet, nPkts)
	out := make([]*dhl.Packet, 2*nPkts)
	prev := sys.Snapshot()
	fmt.Printf("\nwatch: %d rounds x %d loopback packets\n", rounds, nPkts)
	for round := 1; round <= rounds; round++ {
		for i := range pkts {
			m, aerr := pool.Alloc()
			if aerr != nil {
				return aerr
			}
			if aerr := m.AppendBytes(payload); aerr != nil {
				_ = pool.Free(m)
				return aerr
			}
			m.AccID = uint16(acc)
			pkts[i] = m
		}
		n, serr := sys.SendPackets(nf, pkts)
		if serr != nil {
			return serr
		}
		for _, m := range pkts[n:] {
			_ = pool.Free(m)
		}
		sim.Run(sim.Now() + 300*eventsim.Microsecond)
		got, rerr := sys.ReceivePackets(nf, out)
		if rerr != nil {
			return rerr
		}
		for i := 0; i < got; i++ {
			if ferr := pool.Free(out[i]); ferr != nil {
				return ferr
			}
		}
		snap := sys.Snapshot()
		d := snap.Delta(prev)
		prev = snap
		fmt.Printf("round %2d: %d batches, %d pkts, %d bytes delivered\n",
			round, d.CounterTotal(dhl.CounterBatches), d.CounterTotal(dhl.CounterPackets),
			d.CounterTotal(dhl.CounterBytes))
		fmt.Printf("  %-12s %7s %10s %10s %10s\n", "stage", "count", "p50(ns)", "p99(ns)", "mean(ns)")
		for s := dhl.StageIBQWait; s < dhl.NumStages; s++ {
			h := d.Stages[s]
			if h.Count == 0 {
				continue
			}
			fmt.Printf("  %-12s %7d %10.0f %10.0f %10.0f\n",
				s, h.Count, h.QuantileNs(0.50), h.QuantileNs(0.99), h.MeanNs())
		}
	}
	return nil
}

// chaosBurst pushes paced loopback traffic through the armed system: the
// injected module errors drive the loopback accelerator through the health
// FSM (degraded, then quarantined with the software fallback carrying the
// tail) while the DMA retry masks the transient H2C faults.
func chaosBurst(sys *dhl.System, seed uint64) (dhl.AccID, error) {
	acc, err := sys.SearchByName(dhl.Loopback, 0)
	if err != nil {
		return acc, err
	}
	spec := hwfunc.Specs()[hwfunc.LoopbackName]
	if err := sys.RegisterFallback(dhl.Loopback, 0, spec.New); err != nil {
		return acc, err
	}
	sys.Settle() // the loopback bitstream loads over ICAP
	nf, err := sys.Register("inspect-chaos", 0)
	if err != nil {
		return acc, err
	}
	sim, pool := sys.Sim(), sys.Pool()
	payload := []byte("dhl-inspect chaos probe")
	var sent, ok, fallback, unprocessed int
	scratch := make([]*dhl.Packet, 32)
	drain := func() error {
		for {
			n, derr := sys.ReceivePackets(nf, scratch)
			if derr != nil {
				return derr
			}
			if n == 0 {
				return nil
			}
			for _, m := range scratch[:n] {
				switch m.Status {
				case dhl.StatusFallback:
					fallback++
				case dhl.StatusUnprocessed:
					unprocessed++
				default:
					ok++
				}
				if ferr := pool.Free(m); ferr != nil {
					return ferr
				}
			}
		}
	}
	for round := 0; round < 24; round++ {
		burst := make([]*dhl.Packet, 0, 8)
		for i := 0; i < 8; i++ {
			m, aerr := pool.Alloc()
			if aerr != nil {
				return acc, aerr
			}
			if aerr := m.AppendBytes(payload); aerr != nil {
				if ferr := pool.Free(m); ferr != nil {
					return acc, ferr
				}
				return acc, aerr
			}
			m.AccID = uint16(acc)
			burst = append(burst, m)
		}
		n, serr := sys.SendPackets(nf, burst)
		if serr != nil {
			return acc, serr
		}
		sent += n
		for _, m := range burst[n:] {
			if ferr := pool.Free(m); ferr != nil {
				return acc, ferr
			}
		}
		sim.Run(sim.Now() + 50*eventsim.Microsecond)
		if derr := drain(); derr != nil {
			return acc, derr
		}
	}
	sim.Run(sim.Now() + 5*eventsim.Millisecond)
	if derr := drain(); derr != nil {
		return acc, derr
	}
	st, err := sys.Stats(0)
	if err != nil {
		return acc, err
	}
	fmt.Printf("\nchaos burst (seed %d): sent %d, delivered ok/fallback/unprocessed %d/%d/%d\n",
		seed, sent, ok, fallback, unprocessed)
	fmt.Printf("fault ledger: dma retries %d (give-ups %d), corrupt batches %d, faulted-batch drops %d pkts,\n",
		st.DMARetries, st.DMARetryGiveUps, st.CorruptBatches, st.DropFault)
	fmt.Printf("              watchdog timeouts %d, forced quarantines %d\n",
		st.WatchdogTimeouts, st.ForcedQuarantines)
	return acc, nil
}
