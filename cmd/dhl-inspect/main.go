// Command dhl-inspect stands up a simulated DHL system, loads accelerator
// modules, and dumps the FPGA floorplan, resource utilization and the
// hardware function table — the operator's view of Figure 2.
//
// Usage:
//
//	dhl-inspect [-modules ipsec-crypto,pattern-matching] [-fill] [-chaos-seed N]
//
// -fill keeps loading copies of the first module until the board rejects
// the next one, demonstrating the §V-F packing bound.
//
// -chaos-seed arms deterministic fault injection and pushes a short burst
// of loopback traffic through the board, then prints the health FSM state
// and the fault-attribution ledger; the same seed reproduces the same run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	dhl "github.com/opencloudnext/dhl-go"
	"github.com/opencloudnext/dhl-go/internal/eventsim"
	"github.com/opencloudnext/dhl-go/internal/hwfunc"
)

func main() {
	modules := flag.String("modules", "ipsec-crypto,pattern-matching", "comma-separated hardware function names to load")
	fill := flag.Bool("fill", false, "load copies of the first module until the board is full")
	chaosSeed := flag.Uint64("chaos-seed", 0, "arm fault injection with this seed and run a loopback chaos burst (0: off)")
	flag.Parse()
	if err := run(*modules, *fill, *chaosSeed); err != nil {
		fmt.Fprintln(os.Stderr, "dhl-inspect:", err)
		os.Exit(1)
	}
}

func run(modules string, fill bool, chaosSeed uint64) error {
	var plan *dhl.FaultPlan
	if chaosSeed != 0 {
		var err error
		plan, err = dhl.NewFaultPlan(chaosSeed,
			dhl.FaultSpec{Kind: dhl.FaultModuleError, EveryN: 1, Count: 8},
			dhl.FaultSpec{Kind: dhl.FaultDMAH2CError, EveryN: 5, Count: 4},
		)
		if err != nil {
			return err
		}
	}
	sys, err := dhl.NewSystem(dhl.SystemConfig{Faults: plan})
	if err != nil {
		return err
	}
	names := strings.Split(modules, ",")
	var loaded []dhl.AccID
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		acc, lerr := sys.SearchByName(name, 0)
		if lerr != nil {
			return fmt.Errorf("load %q: %w", name, lerr)
		}
		loaded = append(loaded, acc)
		fmt.Printf("loaded %q as acc_id %d\n", name, acc)
	}
	if fill && len(names) > 0 {
		first := strings.TrimSpace(names[0])
		n := 1
		for {
			if _, lerr := sys.LoadPR(first, 0); lerr != nil {
				fmt.Printf("board full after %d instance(s) of %q: %v\n", n, first, lerr)
				break
			}
			n++
		}
	}
	sys.Settle()

	if plan != nil {
		acc, cerr := chaosBurst(sys, chaosSeed)
		if cerr != nil {
			return cerr
		}
		loaded = append(loaded, acc)
	}

	fmt.Println("\nHardware function table:")
	for _, row := range sys.HFTable() {
		fmt.Println(" ", row)
	}
	if plan != nil {
		fmt.Println("\nAccelerator health:")
		for _, acc := range loaded {
			rep, herr := sys.AccHealth(acc)
			if herr != nil {
				return herr
			}
			fmt.Printf("  acc_id %d: %s (faults %d, quarantines %d, reloads %d, fallback active: %v)\n",
				acc, rep.Health, rep.Faults, rep.Quarantines, rep.Reloads, rep.FallbackActive)
		}
	}
	fmt.Println()
	dev, err := sys.Device(0)
	if err != nil {
		return err
	}
	fmt.Print(dev.Floorplan())
	return nil
}

// chaosBurst pushes paced loopback traffic through the armed system: the
// injected module errors drive the loopback accelerator through the health
// FSM (degraded, then quarantined with the software fallback carrying the
// tail) while the DMA retry masks the transient H2C faults.
func chaosBurst(sys *dhl.System, seed uint64) (dhl.AccID, error) {
	acc, err := sys.SearchByName(dhl.Loopback, 0)
	if err != nil {
		return acc, err
	}
	spec := hwfunc.Specs()[hwfunc.LoopbackName]
	if err := sys.RegisterFallback(dhl.Loopback, 0, spec.New); err != nil {
		return acc, err
	}
	sys.Settle() // the loopback bitstream loads over ICAP
	nf, err := sys.Register("inspect-chaos", 0)
	if err != nil {
		return acc, err
	}
	sim, pool := sys.Sim(), sys.Pool()
	payload := []byte("dhl-inspect chaos probe")
	var sent, ok, fallback, unprocessed int
	scratch := make([]*dhl.Packet, 32)
	drain := func() error {
		for {
			n, derr := sys.ReceivePackets(nf, scratch)
			if derr != nil {
				return derr
			}
			if n == 0 {
				return nil
			}
			for _, m := range scratch[:n] {
				switch m.Status {
				case dhl.StatusFallback:
					fallback++
				case dhl.StatusUnprocessed:
					unprocessed++
				default:
					ok++
				}
				if ferr := pool.Free(m); ferr != nil {
					return ferr
				}
			}
		}
	}
	for round := 0; round < 24; round++ {
		burst := make([]*dhl.Packet, 0, 8)
		for i := 0; i < 8; i++ {
			m, aerr := pool.Alloc()
			if aerr != nil {
				return acc, aerr
			}
			if aerr := m.AppendBytes(payload); aerr != nil {
				if ferr := pool.Free(m); ferr != nil {
					return acc, ferr
				}
				return acc, aerr
			}
			m.AccID = uint16(acc)
			burst = append(burst, m)
		}
		n, serr := sys.SendPackets(nf, burst)
		if serr != nil {
			return acc, serr
		}
		sent += n
		for _, m := range burst[n:] {
			if ferr := pool.Free(m); ferr != nil {
				return acc, ferr
			}
		}
		sim.Run(sim.Now() + 50*eventsim.Microsecond)
		if derr := drain(); derr != nil {
			return acc, derr
		}
	}
	sim.Run(sim.Now() + 5*eventsim.Millisecond)
	if derr := drain(); derr != nil {
		return acc, derr
	}
	st, err := sys.Stats(0)
	if err != nil {
		return acc, err
	}
	fmt.Printf("\nchaos burst (seed %d): sent %d, delivered ok/fallback/unprocessed %d/%d/%d\n",
		seed, sent, ok, fallback, unprocessed)
	fmt.Printf("fault ledger: dma retries %d (give-ups %d), corrupt batches %d, faulted-batch drops %d pkts,\n",
		st.DMARetries, st.DMARetryGiveUps, st.CorruptBatches, st.DropFault)
	fmt.Printf("              watchdog timeouts %d, forced quarantines %d\n",
		st.WatchdogTimeouts, st.ForcedQuarantines)
	return acc, nil
}
