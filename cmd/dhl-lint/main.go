// Command dhl-lint runs the DHL domain-specific static analyzers over the
// module: mbufleak (mempool balance), ringmode (SyncMode vs. goroutine
// usage), hotpathalloc (//dhl:hotpath allocation freedom) and checkederr
// (dropped DHL API errors). It is built only on the standard library's
// go/ast, go/parser and go/types, so it runs offline in any environment
// that can build the module itself.
//
// Usage:
//
//	dhl-lint [-json] [-run name[,name...]] [packages]
//
// The packages argument is either a directory inside the module or the
// conventional "./..." to analyze every package; with no argument the
// whole module containing the working directory is analyzed. Findings are
// printed as file:line:col diagnostics (or a JSON array with -json) and
// the exit status is 1 when any finding is reported, 2 on operational
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/opencloudnext/dhl-go/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dhl-lint [-json] [-run name,...] [./... | dir]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *runList != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name()] {
				sel = append(sel, a)
				delete(want, a.Name())
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "dhl-lint: unknown analyzer %q\n", n)
			return 2
		}
		analyzers = sel
	}

	target := "./..."
	if flag.NArg() > 0 {
		target = flag.Arg(0)
	}
	root, err := findModuleRoot(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhl-lint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhl-lint:", err)
		return 2
	}

	var pkgs []*lint.Package
	if strings.HasSuffix(target, "...") || target == root {
		pkgs, err = loader.LoadAll()
	} else {
		var pkg *lint.Package
		pkg, err = loader.LoadDir(target)
		pkgs = []*lint.Package{pkg}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhl-lint:", err)
		return 2
	}

	findings := lint.Run(pkgs, analyzers)
	for i, f := range findings {
		if r, err := filepath.Rel(root, f.File); err == nil && !strings.HasPrefix(r, "..") {
			findings[i].File = r
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "dhl-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "dhl-lint: %d finding(s)\n", len(findings))
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// findModuleRoot locates the go.mod directory governing target ("./..."
// style patterns resolve against the working directory).
func findModuleRoot(target string) (string, error) {
	dir := strings.TrimSuffix(target, "...")
	dir = strings.TrimSuffix(dir, "/")
	if dir == "" || dir == "." {
		var err error
		dir, err = os.Getwd()
		if err != nil {
			return "", err
		}
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}
