// Command dhl-lint runs the DHL domain-specific static analyzers over the
// module. The suite covers the PR 1 contracts — mbufleak (mempool
// balance), ringmode (SyncMode vs. goroutine usage), hotpathalloc
// (//dhl:hotpath allocation heuristics) and checkederr (dropped DHL API
// errors) — and the PR 3–5 invariants: arenalease (batchArena lease/ret
// balance), atomicfield (module-wide sync/atomic access consistency),
// stagepair (telemetry Span Start/telFinalize pairing), faultattr
// (faultinject Kind ledger exhaustiveness and Fire-site attribution) and
// escapecheck (compiler-verified zero heap escapes in //dhl:hotpath
// functions, via `go build -gcflags=-m`). Everything except escapecheck's
// compiler probe is built only on the standard library's go/ast,
// go/parser and go/types, so the suite runs offline in any environment
// that can build the module itself; when the toolchain cannot run the
// escape probe, that one analyzer degrades to a warning instead of
// failing the gate.
//
// Usage:
//
//	dhl-lint [-format text|json] [-run name[,name...]] [packages...]
//
// Each packages argument is either a directory inside the module or the
// conventional "./..." to analyze every package; with no argument the
// whole module containing the working directory is analyzed. Findings
// are printed as file:line:col diagnostics (or, with -format json, a
// JSON array suitable as a CI artifact) and the exit status is 1 when
// any finding is reported, 2 on operational errors.
//
// A finding can be suppressed at the offending line (or the line above)
// with a justified directive:
//
//	//dhl:allow <analyzer> <reason>
//
// Directives without a reason are ignored, so every suppression stays
// self-documenting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/opencloudnext/dhl-go/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	format := flag.String("format", "text", "output format: text or json")
	jsonOut := flag.Bool("json", false, "shorthand for -format json")
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dhl-lint [-format text|json] [-run name,...] [./... | dir ...]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut {
		*format = "json"
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "dhl-lint: unknown format %q (want text or json)\n", *format)
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *runList != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name()] {
				sel = append(sel, a)
				delete(want, a.Name())
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "dhl-lint: unknown analyzer %q\n", n)
			return 2
		}
		analyzers = sel
	}

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"./..."}
	}
	root, err := findModuleRoot(targets[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhl-lint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dhl-lint:", err)
		return 2
	}

	var pkgs []*lint.Package
	seen := map[string]bool{}
	for _, target := range targets {
		var batch []*lint.Package
		if strings.HasSuffix(target, "...") || target == root {
			batch, err = loader.LoadAll()
		} else {
			var pkg *lint.Package
			pkg, err = loader.LoadDir(target)
			batch = []*lint.Package{pkg}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dhl-lint:", err)
			return 2
		}
		for _, pkg := range batch {
			if !seen[pkg.ImportPath] {
				seen[pkg.ImportPath] = true
				pkgs = append(pkgs, pkg)
			}
		}
	}

	findings := lint.Run(pkgs, analyzers)
	for i, f := range findings {
		if r, err := filepath.Rel(root, f.File); err == nil && !strings.HasPrefix(r, "..") {
			findings[i].File = r
		}
	}

	// escapecheck's compiler probe degrades, it does not gate: a toolchain
	// that cannot run `go build -gcflags=-m` produces a warning, while a
	// probe that ran and failed (targets do not build) is an operational
	// error.
	probeErr := false
	for _, a := range analyzers {
		esc, ok := a.(*lint.EscapeCheck)
		if !ok {
			continue
		}
		if esc.Unsupported {
			fmt.Fprintln(os.Stderr, "dhl-lint: warning: toolchain cannot run `go build -gcflags=-m`; escapecheck skipped")
		}
		if esc.RunErr != nil {
			fmt.Fprintln(os.Stderr, "dhl-lint:", esc.RunErr)
			probeErr = true
		}
	}

	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "dhl-lint:", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "dhl-lint: %d finding(s)\n", len(findings))
		}
	}
	switch {
	case probeErr:
		return 2
	case len(findings) > 0:
		return 1
	}
	return 0
}

// findModuleRoot locates the go.mod directory governing target ("./..."
// style patterns resolve against the working directory).
func findModuleRoot(target string) (string, error) {
	dir := strings.TrimSuffix(target, "...")
	dir = strings.TrimSuffix(dir, "/")
	if dir == "" || dir == "." {
		var err error
		dir, err = os.Getwd()
		if err != nil {
			return "", err
		}
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}
