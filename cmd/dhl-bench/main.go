// Command dhl-bench regenerates the tables and figures of the DHL paper's
// evaluation section from the simulated testbed and prints them in the
// paper's layout.
//
// Usage:
//
//	dhl-bench [table1|fig4|fig6|fig7|table5|table6|table7|ablation|telemetry|flowscale|boardfailover|diurnal|all]
//
// With no argument it runs everything. Full-fidelity windows take a few
// minutes of wall time; pass -quick for shorter measurement windows.
// The flowscale and diurnal targets additionally accept -json to emit
// the sweep as a machine-readable document (scripts/bench.sh captures
// them as BENCH_pr8.json and BENCH_pr10.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/opencloudnext/dhl-go/internal/eventsim"
	"github.com/opencloudnext/dhl-go/internal/flowtab"
	"github.com/opencloudnext/dhl-go/internal/harness"
	"github.com/opencloudnext/dhl-go/internal/telemetry"
)

// emitJSON switches the flowscale and diurnal targets from the human
// table to a JSON document on stdout.
var emitJSON bool

// jsonTargets are the steps that support the -json flag.
var jsonTargets = map[string]bool{"flowscale": true, "diurnal": true}

func main() {
	quick := flag.Bool("quick", false, "use short measurement windows")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (flowscale and diurnal targets only)")
	flag.Parse()
	emitJSON = *jsonOut
	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	if emitJSON && (len(targets) != 1 || !jsonTargets[strings.ToLower(targets[0])]) {
		fmt.Fprintln(os.Stderr, "dhl-bench: -json is only supported with exactly one of the flowscale or diurnal targets")
		os.Exit(1)
	}
	if err := run(targets, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "dhl-bench:", err)
		os.Exit(1)
	}
}

func run(targets []string, quick bool) error {
	want := make(map[string]bool)
	for _, t := range targets {
		want[strings.ToLower(t)] = true
	}
	all := want["all"]
	type step struct {
		name string
		fn   func(bool) error
	}
	steps := []step{
		{"table1", runTable1},
		{"fig4", runFig4},
		{"fig6", runFig6},
		{"fig7", runFig7},
		{"table5", runTable5},
		{"table6", runTable6},
		{"table7", runTable7},
		{"ablation", runAblation},
		{"telemetry", runTelemetry},
		{"flowscale", runFlowScaleBench},
		{"boardfailover", runBoardFailoverBench},
		{"diurnal", runDiurnalBench},
	}
	known := make(map[string]bool, len(steps))
	for _, s := range steps {
		known[s.name] = true
	}
	for t := range want {
		if t != "all" && !known[t] {
			return fmt.Errorf("unknown target %q (want table1|fig4|fig6|fig7|table5|table6|table7|ablation|telemetry|flowscale|boardfailover|diurnal|all)", t)
		}
	}
	for _, s := range steps {
		if all || want[s.name] {
			if err := s.fn(quick); err != nil {
				return fmt.Errorf("%s: %w", s.name, err)
			}
		}
	}
	return nil
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func singleCfg(quick bool, cfg harness.SingleNFConfig) harness.SingleNFConfig {
	if quick {
		cfg.Warmup = 2 * eventsim.Millisecond
		cfg.Window = 6 * eventsim.Millisecond
	}
	return cfg
}

func runTable1(bool) error {
	header("Table I: performance of DPDK with one CPU core (64B, 10G NIC)")
	rows, err := harness.RunTable1()
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %-24s %s\n", "Network Function", "Latency (cpu cycles)", "Throughput")
	for _, r := range rows {
		fmt.Printf("%-16s %-24.0f %.2f Gbps (wire %.2f)\n",
			r.NF, r.CyclesPerPkt, r.Throughput.InputBps/1e9, r.Throughput.WireBps/1e9)
	}
	return nil
}

func runFig4(bool) error {
	header("Figure 4: packet DMA engine performance (PCIe Gen3 x8)")
	results, err := harness.RunFigure4(nil)
	if err != nil {
		return err
	}
	bySeries := map[harness.DMAVariant][]harness.DMAResult{}
	for _, r := range results {
		bySeries[r.Variant] = append(bySeries[r.Variant], r)
	}
	order := []harness.DMAVariant{harness.DMAInKernel, harness.DMARemoteNUMA, harness.DMALocalNUMA}
	fmt.Printf("%-10s", "size")
	for _, v := range order {
		fmt.Printf(" | %-22v", v)
	}
	fmt.Printf("\n%-10s", "")
	for range order {
		fmt.Printf(" | %10s %11s", "Gbps", "RTT(us)")
	}
	fmt.Println()
	for i := range bySeries[order[0]] {
		fmt.Printf("%-10s", sizeLabel(bySeries[order[0]][i].TransferSize))
		for _, v := range order {
			r := bySeries[v][i]
			fmt.Printf(" | %10.2f %11.2f", r.ThroughputBps/1e9, r.LatencyUs)
		}
		fmt.Println()
	}
	return nil
}

func sizeLabel(n int) string {
	if n >= 1024 {
		return fmt.Sprintf("%dKB", n/1024)
	}
	return fmt.Sprintf("%dB", n)
}

func runFig6(quick bool) error {
	header("Figure 6: single NF throughput and latency (40G NIC, 4 cores)")
	for _, kind := range []harness.NFKind{harness.IPsecGateway, harness.NIDS} {
		fmt.Printf("\n-- %v --\n", kind)
		fmt.Printf("%-7s | %-21s | %-21s | %-12s\n", "size", "CPU-only", "DHL", "I/O")
		fmt.Printf("%-7s | %9s %11s | %9s %11s | %9s\n", "", "Gbps", "lat(us)", "Gbps", "lat(us)", "Gbps")
		for _, size := range harness.FrameSizes {
			cpuThr, cpuLat, err := harness.MeasureSingleNF(singleCfg(quick, harness.SingleNFConfig{
				Kind: kind, Mode: harness.CPUOnly, FrameSize: size}))
			if err != nil {
				return err
			}
			dhlThr, dhlLat, err := harness.MeasureSingleNF(singleCfg(quick, harness.SingleNFConfig{
				Kind: kind, Mode: harness.DHL, FrameSize: size}))
			if err != nil {
				return err
			}
			ioThr, err := harness.RunSingleNF(singleCfg(quick, harness.SingleNFConfig{
				Kind: kind, Mode: harness.IOOnly, FrameSize: size}))
			if err != nil {
				return err
			}
			fmt.Printf("%-7d | %9.2f %11.2f | %9.2f %11.2f | %9.2f\n",
				size,
				cpuThr.Throughput.InputBps/1e9, cpuLat.Latency.MeanUs,
				dhlThr.Throughput.InputBps/1e9, dhlLat.Latency.MeanUs,
				ioThr.Throughput.InputBps/1e9)
		}
	}
	fmt.Println("\nClickNP comparison (reported values, Fig. 6(a)/(b)): ~37-40 Gbps across sizes,")
	fmt.Println("latency higher than DHL's; not reproducible (closed source), see EXPERIMENTS.md.")
	return nil
}

func runFig7(quick bool) error {
	header("Figure 7: multiple NFs (4x10G ports, shared FPGA)")
	win := 20 * eventsim.Millisecond
	if quick {
		win = 8 * eventsim.Millisecond
	}
	fmt.Printf("%-7s | %-23s | %-23s\n", "size", "(a) IPsec1 / IPsec2", "(b) IPsec / NIDS")
	for _, size := range harness.FrameSizes {
		a, err := harness.RunMultiNF(harness.MultiNFConfig{SharedAccelerator: true, FrameSize: size, Window: win})
		if err != nil {
			return err
		}
		b, err := harness.RunMultiNF(harness.MultiNFConfig{SharedAccelerator: false, FrameSize: size, Window: win})
		if err != nil {
			return err
		}
		fmt.Printf("%-7d | %9.2f / %9.2f   | %9.2f / %9.2f   (Gbps wire)\n",
			size, a.NF1.WireBps/1e9, a.NF2.WireBps/1e9, b.NF1.WireBps/1e9, b.NF2.WireBps/1e9)
	}
	return nil
}

func runTable5(bool) error {
	header("Table V: reconfiguration time of accelerator modules")
	rows, err := harness.RunTable5()
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %-18s %-10s %s\n", "Accelerator", "PR Bitstream", "PR Time", "Running NF (before -> during)")
	for _, r := range rows {
		fmt.Printf("%-18s %-18s %-10s %.2f -> %.2f Gbps\n",
			r.Module, fmt.Sprintf("%.1f MB", float64(r.BitstreamBytes)/1024/1024),
			fmt.Sprintf("%.0f ms", r.PRTimeMs),
			r.RunningNFBeforeBps/1e9, r.RunningNFDuringBps/1e9)
	}
	return nil
}

func runTable6(bool) error {
	header("Table VI: accelerator modules and static region utilization")
	res, err := harness.RunTable6()
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %-18s %-18s %-12s %s\n", "Module", "LUTs", "BRAM", "Throughput", "Delay")
	for _, r := range res.Rows {
		thr, delay := "N/A", "N/A"
		if r.Gbps > 0 {
			thr = fmt.Sprintf("%.2f Gbps", r.Gbps)
			delay = fmt.Sprintf("%d cycles", r.DelayCycles)
		}
		fmt.Printf("%-18s %-18s %-18s %-12s %s\n", r.Name,
			fmt.Sprintf("%d (%.2f%%)", r.LUTs, r.LUTsPct),
			fmt.Sprintf("%d (%.2f%%)", r.BRAM, r.BRAMPct), thr, delay)
	}
	fmt.Printf("packing bound: %d x ipsec-crypto or %d x pattern-matching per board\n",
		res.MaxIPsecCrypto, res.MaxPatternMatching)
	return nil
}

func runTable7(bool) error {
	header("Table VII: lines of code to shift the CPU-only NF into DHL")
	for _, r := range harness.RunTable7() {
		fmt.Printf("%-18s %d LoC\n", r.Module, r.LoC)
	}
	return nil
}

// runTelemetry measures the DHL IPsec gateway's capacity at 512B frames,
// replays the run at 80% of that load with the stage clock armed, and
// prints where each batch's time goes: the EXPERIMENTS.md per-stage
// latency breakdown.
func runTelemetry(quick bool) error {
	header("Telemetry: per-stage latency breakdown (DHL IPsec, 512B, 80% capacity)")
	capRes, err := harness.RunSingleNF(singleCfg(quick, harness.SingleNFConfig{
		Kind: harness.IPsecGateway, Mode: harness.DHL, FrameSize: 512}))
	if err != nil {
		return err
	}
	capBps := capRes.Throughput.WireBps
	tel := telemetry.New(0)
	res, err := harness.RunSingleNF(singleCfg(quick, harness.SingleNFConfig{
		Kind: harness.IPsecGateway, Mode: harness.DHL, FrameSize: 512,
		OfferedWireBps: 0.8 * capBps, Telemetry: tel}))
	if err != nil {
		return err
	}
	snap := tel.Snapshot()
	fmt.Printf("capacity %.2f Gbps wire; offered %.2f Gbps (80%%), carried %.2f Gbps\n",
		capBps/1e9, 0.8*capBps/1e9, res.Throughput.WireBps/1e9)
	fmt.Printf("%d batches, %d packets, %d bytes through the FPGA chain\n",
		snap.CounterTotal(telemetry.CounterBatches), snap.CounterTotal(telemetry.CounterPackets),
		snap.CounterTotal(telemetry.CounterBytes))
	fmt.Printf("%-12s %9s %10s %10s %10s\n", "stage", "count", "p50(ns)", "p99(ns)", "mean(ns)")
	for s := telemetry.StageIBQWait; s < telemetry.NumStages; s++ {
		h := snap.Stages[s]
		if h.Count == 0 {
			continue
		}
		fmt.Printf("%-12s %9d %10.0f %10.0f %10.0f\n",
			s, h.Count, h.QuantileNs(0.50), h.QuantileNs(0.99), h.MeanNs())
	}
	fmt.Printf("%-12s %9d %10.0f %10.0f %10.0f  (pcie service)\n",
		"dma_h2c", snap.DMAH2C.Count, snap.DMAH2C.QuantileNs(0.50), snap.DMAH2C.QuantileNs(0.99), snap.DMAH2C.MeanNs())
	fmt.Printf("%-12s %9d %10.0f %10.0f %10.0f  (pcie service)\n",
		"dma_c2h", snap.DMAC2H.Count, snap.DMAC2H.QuantileNs(0.50), snap.DMAC2H.QuantileNs(0.99), snap.DMAC2H.MeanNs())
	fmt.Printf("%-12s %9d %10.0f %10.0f %10.0f  (dispatcher service)\n",
		"dispatch", snap.Dispatch.Count, snap.Dispatch.QuantileNs(0.50), snap.Dispatch.QuantileNs(0.99), snap.Dispatch.MeanNs())
	return nil
}

// flowScalePoint is one row of the flowscale sweep in the BENCH_pr8.json
// document.
type flowScalePoint struct {
	Flows        int           `json:"flows"`
	GoodputBps   float64       `json:"goodput_bps"`
	WireBps      float64       `json:"wire_bps"`
	Pkts         uint64        `json:"pkts"`
	HitRate      float64       `json:"hit_rate"`
	BytesPerFlow float64       `json:"bytes_per_flow"`
	Births       uint64        `json:"births"`
	Deaths       uint64        `json:"deaths"`
	NFDropped    uint64        `json:"nf_dropped"`
	Table        flowtab.Stats `json:"table"`
}

// runFlowScaleBench sweeps the stateful flow-aware firewall across flow
// populations from 10k to 2M under Zipf traffic with churn: the
// flows-vs-goodput and bytes-per-flow series. Conservation of every
// generated frame is enforced inside the sweep.
func runFlowScaleBench(quick bool) error {
	counts := []int{10_000, 100_000, 1_000_000, 2_000_000}
	base := harness.FlowScaleConfig{
		ZipfSkew:       1.1,
		ChurnPerSec:    2e6,
		Window:         30 * eventsim.Millisecond,
		FlowTTL:        20 * eventsim.Millisecond,
		MemBudgetBytes: 512 << 20,
	}
	if quick {
		base.Window = 6 * eventsim.Millisecond
		base.FlowTTL = 5 * eventsim.Millisecond
	}
	results, err := harness.RunFlowScaleSweep(counts, base)
	if err != nil {
		return err
	}
	points := make([]flowScalePoint, 0, len(results))
	for _, r := range results {
		p := flowScalePoint{
			Flows:        r.Config.Flows,
			GoodputBps:   r.Throughput.GoodBps,
			WireBps:      r.Throughput.WireBps,
			Pkts:         r.Throughput.Pkts,
			HitRate:      r.HitRate,
			BytesPerFlow: r.BytesPerFlow,
			Births:       r.Births,
			Deaths:       r.Deaths,
			NFDropped:    r.NFDropped,
		}
		if len(r.Tables) > 0 {
			p.Table = r.Tables[0].Stats
		}
		points = append(points, p)
	}
	if emitJSON {
		doc := struct {
			Bench  string `json:"bench"`
			Config struct {
				ZipfSkew       float64 `json:"zipf_skew"`
				ChurnPerSec    float64 `json:"churn_per_sec"`
				WindowMs       float64 `json:"window_ms"`
				FlowTTLMs      float64 `json:"flow_ttl_ms"`
				MemBudgetBytes int     `json:"mem_budget_bytes"`
				FrameSize      int     `json:"frame_size"`
			} `json:"config"`
			Points []flowScalePoint `json:"points"`
		}{Bench: "pr8_flowscale", Points: points}
		doc.Config.ZipfSkew = base.ZipfSkew
		doc.Config.ChurnPerSec = base.ChurnPerSec
		doc.Config.WindowMs = base.Window.Seconds() * 1e3
		doc.Config.FlowTTLMs = base.FlowTTL.Seconds() * 1e3
		doc.Config.MemBudgetBytes = base.MemBudgetBytes
		doc.Config.FrameSize = 128
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	header("Flow scale: stateful firewall, Zipf+churn, flows vs goodput (40G, 128B)")
	fmt.Printf("%-10s %10s %10s %10s %10s %12s %10s\n",
		"flows", "Gbps", "hit rate", "entries", "B/flow", "mem", "evicted")
	for _, p := range points {
		fmt.Printf("%-10d %10.2f %10.3f %10d %10.1f %12d %10d\n",
			p.Flows, p.GoodputBps/1e9, p.HitRate, p.Table.Entries,
			p.BytesPerFlow, p.Table.MemBytes, p.Table.EvictedIdle+p.Table.EvictedPressure)
	}
	return nil
}

func runAblation(bool) error {
	header("Ablation A1: transfer batching policy (DHL IPsec, 512B frames)")
	rows, err := harness.RunBatchingAblation()
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-8s %-12s %-12s\n", "policy", "load", "Gbps", "lat(us)")
	for _, r := range rows {
		fmt.Printf("%-12s %-8s %-12.2f %-12.2f\n", r.Label,
			fmt.Sprintf("%.0f%%", r.OfferedPct), r.Throughput.InputBps/1e9, r.Latency.MeanUs)
	}

	header("Ablation A2: driver mode / NUMA placement (DHL IPsec, 512B)")
	drv, err := harness.RunDriverAblation()
	if err != nil {
		return err
	}
	for _, r := range drv {
		fmt.Printf("%-20s %8.2f Gbps   %8.2f us\n", r.Label, r.Throughput.InputBps/1e9, r.Latency.MeanUs)
	}

	header("Ablation A3: vertical scaling (§VI.1)")
	vert, err := harness.RunVerticalScaling()
	if err != nil {
		return err
	}
	for _, r := range vert {
		fmt.Printf("%-22s %8.2f Gbps aggregate DMA ceiling\n", r.Label, r.AggregateGbps)
	}
	return nil
}

// diurnalSeries is one run (fixed or autotuned) of the T5 sweep in the
// BENCH_pr10.json document.
type diurnalSeries struct {
	Label           string  `json:"label"`
	PeakGoodputBps  float64 `json:"peak_goodput_bps"`
	PeakP50Us       float64 `json:"peak_p50_us"`
	PeakP99Us       float64 `json:"peak_p99_us"`
	TroughGoodBps   float64 `json:"trough_goodput_bps"`
	TroughP50Us     float64 `json:"trough_p50_us"`
	TroughP99Us     float64 `json:"trough_p99_us"`
	SilentDrops     uint64  `json:"silent_drops"`
	IBQRejected     uint64  `json:"ibq_rejected"`
	PressureEvents  uint64  `json:"pressure_events"`
	TunerWindows    uint64  `json:"tuner_windows"`
	GrowDecisions   uint64  `json:"tuner_grow_decisions"`
	ShrinkDecisions uint64  `json:"tuner_shrink_decisions"`
}

func diurnalSeriesOf(label string, r harness.DiurnalResult) diurnalSeries {
	return diurnalSeries{
		Label:           label,
		PeakGoodputBps:  r.Peak.Throughput.GoodBps,
		PeakP50Us:       r.Peak.Latency.P50Us,
		PeakP99Us:       r.Peak.Latency.P99Us,
		TroughGoodBps:   r.Trough.Throughput.GoodBps,
		TroughP50Us:     r.Trough.Latency.P50Us,
		TroughP99Us:     r.Trough.Latency.P99Us,
		SilentDrops:     r.SilentDrops,
		IBQRejected:     r.IBQRejected,
		PressureEvents:  r.PressureEvents,
		TunerWindows:    r.Tuner.Windows,
		GrowDecisions:   r.Tuner.GrowDecisions,
		ShrinkDecisions: r.Tuner.ShrinkDecisions,
	}
}

// runDiurnalBench runs the T5 diurnal load sweep: the same DHL IPsec
// gateway under a peak/trough offered-load swing, fixed 6 KB batching
// vs. the adaptive batching autotuner, with the gate ratios the PR's
// acceptance criteria check.
func runDiurnalBench(quick bool) error {
	cfg := harness.DiurnalConfig{}
	if quick {
		cfg.Warmup = 2 * eventsim.Millisecond
		cfg.Window = 5 * eventsim.Millisecond
	}
	cmp, err := harness.RunDiurnalComparison(cfg)
	if err != nil {
		return err
	}
	if emitJSON {
		doc := struct {
			Bench  string `json:"bench"`
			Config struct {
				NF            string  `json:"nf"`
				FrameSize     int     `json:"frame_size"`
				PeakWireBps   float64 `json:"peak_wire_bps"`
				TroughWireBps float64 `json:"trough_wire_bps"`
				WarmupMs      float64 `json:"warmup_ms"`
				WindowMs      float64 `json:"window_ms"`
			} `json:"config"`
			Series []diurnalSeries `json:"series"`
			Gates  struct {
				PeakGoodputRatio float64 `json:"peak_goodput_ratio"`
				TroughP99Cut     float64 `json:"trough_p99_cut"`
				SilentDrops      uint64  `json:"silent_drops"`
			} `json:"gates"`
		}{Bench: "pr10_diurnal"}
		dc := cmp.Fixed.Config
		doc.Config.NF = dc.Kind.String()
		doc.Config.FrameSize = dc.FrameSize
		doc.Config.PeakWireBps = dc.PeakWireBps
		doc.Config.TroughWireBps = dc.TroughWireBps
		doc.Config.WarmupMs = dc.Warmup.Seconds() * 1e3
		doc.Config.WindowMs = dc.Window.Seconds() * 1e3
		doc.Series = []diurnalSeries{
			diurnalSeriesOf("fixed-6KB", cmp.Fixed),
			diurnalSeriesOf("autotuned", cmp.Tuned),
		}
		doc.Gates.PeakGoodputRatio = cmp.PeakGoodputRatio
		doc.Gates.TroughP99Cut = cmp.TroughP99Cut
		doc.Gates.SilentDrops = cmp.Fixed.SilentDrops + cmp.Tuned.SilentDrops
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}
	header("Diurnal sweep: adaptive batching autotuner vs fixed 6 KB (DHL IPsec, 1024B)")
	fmt.Printf("offered: peak %.0f Gbps, trough %.1f Gbps (burst 1, %.0f ms windows)\n\n",
		cmp.Fixed.Config.PeakWireBps/1e9, cmp.Fixed.Config.TroughWireBps/1e9, cmp.Fixed.Config.Window.Seconds()*1e3)
	fmt.Printf("%-12s | %-28s | %-28s\n", "", "peak", "trough")
	fmt.Printf("%-12s | %9s %8s %8s | %9s %8s %8s\n", "run", "Gbps", "p50(us)", "p99(us)", "Gbps", "p50(us)", "p99(us)")
	for _, s := range []diurnalSeries{diurnalSeriesOf("fixed-6KB", cmp.Fixed), diurnalSeriesOf("autotuned", cmp.Tuned)} {
		fmt.Printf("%-12s | %9.2f %8.2f %8.2f | %9.3f %8.2f %8.2f\n",
			s.Label, s.PeakGoodputBps/1e9, s.PeakP50Us, s.PeakP99Us,
			s.TroughGoodBps/1e9, s.TroughP50Us, s.TroughP99Us)
	}
	fmt.Printf("\ngates: peak goodput ratio %.3f (>= 0.98), trough p99 cut %.0f%% (>= 30%%), silent drops %d (= 0)\n",
		cmp.PeakGoodputRatio, cmp.TroughP99Cut*100, cmp.Fixed.SilentDrops+cmp.Tuned.SilentDrops)
	fmt.Printf("tuner: %d windows, %d grow / %d shrink decisions\n",
		cmp.Tuned.Tuner.Windows, cmp.Tuned.Tuner.GrowDecisions, cmp.Tuned.Tuner.ShrinkDecisions)
	return nil
}

func runBoardFailoverBench(quick bool) error {
	header("Board failover: whole-board loss, live migration vs warm replica")
	cfg := harness.BoardFailoverConfig{}
	if quick {
		cfg.Buckets = 30
	}
	res, err := harness.RunBoardFailover(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("baseline goodput: %.1f Mbps (two-board fleet, ipsec-crypto)\n\n", res.BaselineGoodBps/1e6)
	fmt.Printf("%-24s %10s %10s %12s %8s %12s\n",
		"run", "MTTR(us)", "min(Mbps)", "recov(Mbps)", "board", "migrated-in")
	for _, run := range []*harness.BoardFailoverRun{&res.Baseline, &res.NoReplica, &res.Replica} {
		fmt.Printf("%-24s %10.0f %10.1f %12.1f %8d %12d\n",
			run.Label, run.MTTRUs, run.MinRateBps/1e6, run.RecoveredGoodBps/1e6,
			run.FinalBoard, run.MigratedIn)
	}
	fmt.Println("\nMTTR 0 = no measurable outage; the replica run's board loss is absorbed")
	fmt.Println("by an instant routing-table promotion, while the no-replica run pays the")
	fmt.Println("~29 ms ICAP re-place of the 5.6 MB ipsec bitstream on the surviving board.")
	return nil
}
